"""Rice (Golomb power-of-two) coding of non-negative integers.

Rice codes are the standard low-complexity entropy coder for wavelet and
predictive residuals (they are what lossless JPEG-LS and CCSDS use).  A
symbol ``s`` is coded with parameter ``k`` as the unary quotient
``s >> k`` followed by the ``k`` low-order bits.  The optimal ``k`` tracks
the mean of the symbols; :func:`optimal_rice_parameter` picks it per block
from a single ``(symbols x k)`` cost matrix (exact — Rice code lengths are
``(s >> k) + 1 + k``, no re-encoding needed).

Two implementations of the block coder are provided:

* :func:`rice_encode` / :func:`rice_decode` — vectorised NumPy paths built on
  :mod:`repro.coding.fastbits` (unary runs via ``np.repeat``, sequential
  decode via pointer doubling over the stream's zero positions), and
* :func:`rice_encode_scalar` / :func:`rice_decode_scalar` — the original
  bit-by-bit reference implementations, kept for validation (mirroring the
  ``analysis_convolve`` / ``analysis_convolve_scalar`` idiom of the DWT).

Both produce **byte-identical** streams; the wire format is
``k (8 bits) | count (32 bits) | Rice codes | zero padding to a byte``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from .bitstream import BitReader, BitWriter
from .fastbits import (
    bit_windows64,
    orbit,
    pack_bits,
    pack_uint_fields,
    ragged_arange,
    read_uint,
    unpack_bits,
)

__all__ = [
    "rice_encode_value",
    "rice_decode_value",
    "rice_encode",
    "rice_decode",
    "rice_decode_array",
    "rice_decode_array_turbo",
    "rice_decode_turbo",
    "rice_encode_scalar",
    "rice_decode_scalar",
    "rice_code_length",
    "rice_cost_matrix",
    "optimal_rice_parameter",
]

#: Largest Rice parameter considered by the optimiser (32-bit symbols).
MAX_RICE_PARAMETER = 30

def _as_symbol_array(symbols) -> np.ndarray:
    """Coerce a symbol block to ``int64`` without per-element Python loops."""
    if isinstance(symbols, np.ndarray):
        return symbols.astype(np.int64, copy=False).ravel()
    if isinstance(symbols, (list, tuple)):
        return np.asarray(symbols, dtype=np.int64)
    return np.asarray(list(symbols), dtype=np.int64)


def _check_non_negative(arr: np.ndarray) -> None:
    if arr.size and int(arr.min()) < 0:
        raise ValueError("Rice codes encode non-negative integers")


def rice_encode_value(writer: BitWriter, value: int, k: int) -> None:
    """Append the Rice code of one non-negative ``value`` with parameter ``k``."""
    if value < 0:
        raise ValueError("Rice codes encode non-negative integers")
    if not 0 <= k <= MAX_RICE_PARAMETER:
        raise ValueError(f"Rice parameter {k} outside [0, {MAX_RICE_PARAMETER}]")
    quotient = value >> k
    writer.write_unary(quotient)
    if k:
        writer.write_uint(value & ((1 << k) - 1), k)


def rice_decode_value(reader: BitReader, k: int) -> int:
    """Read one Rice-coded value with parameter ``k``."""
    if not 0 <= k <= MAX_RICE_PARAMETER:
        raise ValueError(f"Rice parameter {k} outside [0, {MAX_RICE_PARAMETER}]")
    quotient = reader.read_unary()
    remainder = reader.read_uint(k) if k else 0
    return (quotient << k) | remainder


def rice_code_length(value: int, k: int) -> int:
    """Length in bits of the Rice code of ``value`` with parameter ``k``."""
    if value < 0:
        raise ValueError("Rice codes encode non-negative integers")
    return (value >> k) + 1 + k


def rice_cost_matrix(symbols, max_k: int = MAX_RICE_PARAMETER) -> np.ndarray:
    """Total code length (bits) of the block for every parameter ``0..max_k``.

    One row of the conceptual ``(blocks x k)`` cost matrix: the exact coded
    size for every candidate parameter at once, with no re-encoding.  The
    quotient sums ``sum(s >> k)`` are produced by successive halving of a
    single working copy, so the whole matrix row costs one pass per populated
    bit plane instead of ``max_k`` full shifts.
    """
    arr = _as_symbol_array(symbols)
    _check_non_negative(arr)
    ks = np.arange(max_k + 1, dtype=np.int64)
    costs = arr.size * (1 + ks)
    work = arr.copy()
    for k in range(max_k + 1):
        total = int(work.sum())
        if total == 0:
            break
        costs[k] += total
        work >>= 1
    return costs


def optimal_rice_parameter(symbols, max_k: int = MAX_RICE_PARAMETER) -> int:
    """Parameter ``k`` minimising the total code length of ``symbols``.

    Exact (cost matrix over all candidate parameters); ties resolve to the
    smallest ``k``.  An empty block returns 0.
    """
    arr = _as_symbol_array(symbols)
    if arr.size == 0:
        return 0
    _check_non_negative(arr)
    return int(np.argmin(rice_cost_matrix(arr, max_k)))


# ---------------------------------------------------------------------------
# Vectorised block coder
# ---------------------------------------------------------------------------

def rice_encode(symbols, k: Optional[int] = None) -> bytes:
    """Encode a block of non-negative symbols; returns ``header + payload``.

    The chosen parameter (one byte) and the symbol count (four bytes) are
    stored in front of the payload so that :func:`rice_decode` is
    self-contained.  Vectorised: the unary quotients become ragged runs of
    ones placed with ``np.repeat``, the remainders are filled one bit-plane
    at a time, and the whole stream is flushed with one ``np.packbits``.
    """
    arr = _as_symbol_array(symbols)
    _check_non_negative(arr)
    if k is None:
        k = optimal_rice_parameter(arr)
    if not 0 <= k <= MAX_RICE_PARAMETER:
        raise ValueError(f"Rice parameter {k} outside [0, {MAX_RICE_PARAMETER}]")
    header = pack_uint_fields([k, arr.size], [8, 32])
    if arr.size == 0:
        return pack_bits(header)
    quotients = arr >> k
    lengths = quotients + 1 + k
    starts = np.cumsum(lengths) - lengths
    bits = np.zeros(int(lengths.sum()), dtype=np.uint8)
    bits[np.repeat(starts, quotients) + ragged_arange(quotients)] = 1
    if k:
        base = starts + quotients + 1
        for plane in range(k):
            bits[base + plane] = (arr >> (k - 1 - plane)) & 1
    return pack_bits(np.concatenate([header, bits]))


def _skipped_zero_counts(zero_positions: np.ndarray, k: int) -> np.ndarray:
    """Zeros falling inside the ``k`` remainder bits after each zero.

    At most ``k`` zeros fit in that window, and ``zero_positions`` is
    sorted, so a handful of shifted compares (with an early exit once a
    distance yields no hits) counts them exactly.
    """
    nzeros = zero_positions.size
    padded = np.concatenate(
        [zero_positions, np.full(k, np.iinfo(np.int32).max, dtype=np.int32)]
    )
    skipped = np.zeros(nzeros, dtype=np.int32)
    for distance in range(1, k + 1):
        in_window = (padded[distance : distance + nzeros] - zero_positions) <= k
        if not in_window.any():
            break
        skipped += in_window
    return skipped


def rice_decode_array(data: bytes) -> np.ndarray:
    """Vectorised inverse of :func:`rice_encode`, returning an ``int64`` array.

    The sequential "where does the next code start" dependency is solved on
    the stream's zero positions: zero ``j`` terminates a quotient, and the
    zero terminating the *next* quotient has index ``j + 1 + (zeros among the
    k remainder bits after j)`` — a successor map that :func:`orbit` follows
    for all symbols at once.
    """
    bits = unpack_bits(data)
    k = read_uint(bits, 0, 8)
    count = read_uint(bits, 8, 32)
    if not 0 <= k <= MAX_RICE_PARAMETER:
        raise ValueError(f"Rice parameter {k} outside [0, {MAX_RICE_PARAMETER}]")
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    nbits = bits.size
    start = 40
    if start >= nbits:
        raise EOFError("bitstream exhausted")
    zero_positions = np.flatnonzero(bits == 0).astype(np.int32)
    nzeros = zero_positions.size
    first = int(np.searchsorted(zero_positions, start))
    if first >= nzeros:
        raise EOFError("bitstream exhausted")
    if k == 0:
        terminator_idx = first + np.arange(count, dtype=np.int64)
        if int(terminator_idx[-1]) >= nzeros:
            raise EOFError("bitstream exhausted")
    else:
        # successor[j]: index of the zero terminating the next code when zero
        # j terminates the current one — skip the zeros that fall inside the
        # k remainder bits after j.
        skipped = _skipped_zero_counts(zero_positions, k)
        successor = np.minimum(
            np.arange(1, nzeros + 1, dtype=np.int32) + skipped, nzeros - 1
        )
        terminator_idx = orbit(successor, first, count)
        if count > 1 and np.any(np.diff(terminator_idx) <= 0):
            raise EOFError("bitstream exhausted")
    terminators = zero_positions[terminator_idx].astype(np.int64)
    starts = np.empty(count, dtype=np.int64)
    starts[0] = start
    starts[1:] = terminators[:-1] + 1 + k
    quotients = terminators - starts
    if k == 0:
        return quotients
    if int(terminators[-1]) + k >= nbits:
        raise EOFError("bitstream exhausted")
    remainders = np.zeros(count, dtype=np.int64)
    for plane in range(k):
        remainders = (remainders << 1) | bits[terminators + 1 + plane]
    return (quotients << k) | remainders


#: Turbo switches the quotient-terminator scan from the per-distance compare
#: loop (O(k) passes over the zeros) to one ones-cumsum plus two gathers
#: once the parameter makes the loop the longer pass (the cumsum costs one
#: pass over the *bits*, so small parameters stay on the compare loop).
_TURBO_CUMSUM_MIN_K = 17
#: Turbo reads remainders through 64-bit windows (two gathers) instead of
#: one bit-plane pass per remainder bit from this parameter up.
_TURBO_WINDOW_MIN_K = 6


def rice_decode_array_turbo(data) -> np.ndarray:
    """Inverse of :func:`rice_encode` (turbo tier, ``int64`` array result).

    Byte-compatible with :func:`rice_decode_array` but parameter-adaptive:
    for large ``k`` the quotient terminators are located with a single
    cumulative count of zeros over the whole stream (``skipped[j]`` becomes a
    difference of two cumsum gathers, independent of ``k``), and the ``k``
    remainder bits of every symbol are extracted from 64-bit bit windows
    (:func:`~repro.coding.fastbits.bit_windows64`) in one vector expression
    instead of one bit-plane pass per bit.  Small parameters keep the fast
    tier's passes, which are cheaper there.  Accepts ``bytes`` or
    ``memoryview`` input.
    """
    bits = unpack_bits(data)
    k = read_uint(bits, 0, 8)
    count = read_uint(bits, 8, 32)
    if not 0 <= k <= MAX_RICE_PARAMETER:
        raise ValueError(f"Rice parameter {k} outside [0, {MAX_RICE_PARAMETER}]")
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    nbits = bits.size
    start = 40
    if start >= nbits:
        raise EOFError("bitstream exhausted")
    zero_positions = np.flatnonzero(bits == 0).astype(np.int32)
    nzeros = zero_positions.size
    first = int(np.searchsorted(zero_positions, start))
    if first >= nzeros:
        raise EOFError("bitstream exhausted")
    if k == 0:
        terminator_idx = first + np.arange(count, dtype=np.int64)
        if int(terminator_idx[-1]) >= nzeros:
            raise EOFError("bitstream exhausted")
    else:
        if k < _TURBO_CUMSUM_MIN_K:
            skipped = _skipped_zero_counts(zero_positions, k)
        else:
            # The zeros skipped after zero j are the zeros in
            # (position[j], position[j] + k]: window length minus the ones
            # in it, off one cumulative count of the stream's one bits —
            # one pass over the bits regardless of k, where the compare
            # loop above takes k passes over the zeros.
            ones_up_to = np.cumsum(bits, dtype=np.int32)
            window_end = np.minimum(zero_positions + np.int32(k), np.int32(nbits - 1))
            skipped = (window_end - zero_positions) - (
                ones_up_to[window_end] - ones_up_to[zero_positions]
            )
        successor = np.minimum(
            np.arange(1, nzeros + 1, dtype=np.int32) + skipped, nzeros - 1
        )
        terminator_idx = orbit(successor, first, count)
        if count > 1 and np.any(np.diff(terminator_idx) <= 0):
            raise EOFError("bitstream exhausted")
    terminators = zero_positions[terminator_idx].astype(np.int64)
    starts = np.empty(count, dtype=np.int64)
    starts[0] = start
    starts[1:] = terminators[:-1] + 1 + k
    quotients = terminators - starts
    if k == 0:
        return quotients
    if int(terminators[-1]) + k >= nbits:
        raise EOFError("bitstream exhausted")
    if k >= _TURBO_WINDOW_MIN_K:
        windows = bit_windows64(data)
        remainder_pos = terminators + 1
        remainders = (
            (windows[remainder_pos >> 3] << (remainder_pos & 7).astype(np.uint64))
            >> np.uint64(64 - k)
        ).astype(np.int64)
    else:
        remainders = np.zeros(count, dtype=np.int64)
        for plane in range(k):
            remainders = (remainders << 1) | bits[terminators + 1 + plane]
    return (quotients << k) | remainders


def rice_decode_turbo(data) -> List[int]:
    """Inverse of :func:`rice_encode` (turbo tier, list-of-int API)."""
    return rice_decode_array_turbo(data).tolist()


def rice_decode(data: bytes) -> List[int]:
    """Inverse of :func:`rice_encode` (list-of-int API)."""
    return rice_decode_array(data).tolist()


# ---------------------------------------------------------------------------
# Scalar reference implementations (bit-by-bit, used for validation)
# ---------------------------------------------------------------------------

def rice_encode_scalar(symbols, k: Optional[int] = None) -> bytes:
    """Bit-by-bit reference encoder; byte-identical to :func:`rice_encode`."""
    arr = _as_symbol_array(symbols)
    _check_non_negative(arr)
    if k is None:
        k = optimal_rice_parameter(arr)
    writer = BitWriter()
    writer.write_uint(k, 8)
    writer.write_uint(arr.size, 32)
    for symbol in arr.tolist():
        rice_encode_value(writer, symbol, k)
    return writer.getvalue()


def rice_decode_scalar(data: bytes) -> List[int]:
    """Bit-by-bit reference decoder; inverse of both encoders."""
    reader = BitReader(data)
    k = reader.read_uint(8)
    count = reader.read_uint(32)
    return [rice_decode_value(reader, k) for _ in range(count)]
