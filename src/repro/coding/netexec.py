"""Distributed socket-pool execution: the fork-pool shard contract over TCP.

:class:`~repro.coding.executor.ParallelExecutor` established the scale-out
contract of this codebase — a pickled :class:`~repro.coding.spec.CodecSpec`
plus a round-robin frame shard goes in, streams plus merged
:class:`~repro.coding.pipeline.PipelineStats` come out, and the client
reassembles shards in frame order.  This module speaks exactly that
contract over sockets, so a batch can fan out past one host's cores:

``SocketWorker`` / ``python -m repro.netexec worker --listen host:port``
    A stdlib-only worker process: accepts connections, performs the
    HELLO version/capability handshake, and executes SUBMIT jobs
    (compress / decompress / archive verification) through the ordinary
    serial pipeline — which is what makes the merged output
    **byte-identical** to serial execution, same as the fork pool.
``WorkerClient`` / ``WorkerPool``
    One framed TCP connection per worker, and a pool over many: jobs are
    routed to a preferred node (the archive layer's placement maps) or
    round-robin, and a worker that dies mid-SUBMIT is retried under the
    :class:`~repro.archive.backend.RetryPolicy` ladder from PR 6 and then
    **reassigned** to another live worker (``worker_failures`` /
    ``reassignments`` counters account every switch exactly).
``SocketPoolExecutor``
    Drop-in peer of :class:`ParallelExecutor` behind the
    :func:`~repro.coding.executor.make_executor` seam — so
    ``compress_frames(..., workers="host:port,host:port")`` (and
    ``append_batch`` / ``verify`` / ``decode_all`` on the archive side)
    scale out with zero call-site changes.

Wire protocol (version 1) — every message is one length-prefixed,
CRC-framed unit, all integers little-endian::

    +-------------------+----------------+----------+------------------+
    | payload_len (u32) | payload_crc u32| type (u8)| payload bytes    |
    +-------------------+----------------+----------+------------------+

``payload_crc`` is CRC-32 of the payload seeded with the type byte, so a
frame whose type *or* body is corrupted is rejected before anything is
unpickled.  Message types: HELLO(1)/HELLO_OK(2) carry the protocol
version, node id and capability list; SUBMIT(3) carries
``{job, kind, payload}`` with the pickled spec + shard; RESULT(4) carries
``{job, payload}`` with streams + stats; ERROR(5) carries a typed error
code; HEARTBEAT(6)/HEARTBEAT_OK(7) liveness + counters; SHUTDOWN(8)/
SHUTDOWN_OK(9) drains a worker.  Payloads are pickles — the pool is a
trusted execution cluster (the same trust the fork pool already assumes),
not a public endpoint.

A malformed frame (truncated prefix, bad CRC, oversized length, garbage)
produces a **typed error on the client** (:class:`ProtocolError` /
:class:`FrameCrcError` / :class:`FrameTooLargeError`) and costs the worker
only that one connection — the accept loop keeps serving, proven by the
fuzz corpus in ``tests/coding/test_netexec_protocol.py``.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .executor import merge_shard_results, shard_indices
from .pipeline import (
    CompressedBatch,
    PipelineStats,
    compress_frames,
    decompress_frames,
)
from .spec import CodecSpec, reject_spec_overrides

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "NetExecError",
    "ProtocolError",
    "FrameCrcError",
    "FrameTooLargeError",
    "VersionMismatchError",
    "RemoteWorkerError",
    "WorkerUnavailableError",
    "send_message",
    "recv_message",
    "parse_worker_addresses",
    "SocketWorker",
    "WorkerClient",
    "WorkerPool",
    "SocketPoolExecutor",
    "start_local_worker",
    "local_worker_pool",
    "main",
]

#: Version of the wire protocol; HELLO carries it both ways and a mismatch
#: is a clean typed error, never a misparse.
PROTOCOL_VERSION = 1

#: Default cap on one frame's payload (256 MiB).  A declared length above
#: the receiver's cap is rejected *before* any allocation — the defence
#: against a corrupted or hostile length prefix.
MAX_FRAME_BYTES = 256 << 20

#: ``<`` little-endian: payload length, payload CRC-32 (seeded with the
#: type byte), message type — 4+4+1 = 9 bytes before the payload.
_FRAME_HEAD = struct.Struct("<IIB")

MSG_HELLO = 1
MSG_HELLO_OK = 2
MSG_SUBMIT = 3
MSG_RESULT = 4
MSG_ERROR = 5
MSG_HEARTBEAT = 6
MSG_HEARTBEAT_OK = 7
MSG_SHUTDOWN = 8
MSG_SHUTDOWN_OK = 9

_MESSAGE_NAMES = {
    MSG_HELLO: "HELLO",
    MSG_HELLO_OK: "HELLO_OK",
    MSG_SUBMIT: "SUBMIT",
    MSG_RESULT: "RESULT",
    MSG_ERROR: "ERROR",
    MSG_HEARTBEAT: "HEARTBEAT",
    MSG_HEARTBEAT_OK: "HEARTBEAT_OK",
    MSG_SHUTDOWN: "SHUTDOWN",
    MSG_SHUTDOWN_OK: "SHUTDOWN_OK",
}


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------

class NetExecError(Exception):
    """Base class of every socket-pool execution error."""


class ProtocolError(NetExecError):
    """The byte stream is not a valid protocol frame (truncated length
    prefix, garbage header, unexpected message type)."""


class FrameCrcError(ProtocolError):
    """A frame's payload CRC does not match its bytes."""


class FrameTooLargeError(ProtocolError):
    """A frame's declared length exceeds the receiver's cap."""


class VersionMismatchError(NetExecError):
    """Client and worker speak different protocol versions."""


class RemoteWorkerError(NetExecError):
    """The worker executed the job and it failed (a *deterministic* error
    — reassigning it to another worker would fail the same way)."""


class WorkerUnavailableError(NetExecError):
    """A worker cannot be reached, died mid-call, or no worker is left."""


#: ERROR-frame code → the exception the client raises.  Codes, not pickled
#: exception objects, so a malicious/buggy worker cannot choose what the
#: client instantiates.
_ERROR_CODES = {
    "protocol": ProtocolError,
    "bad-crc": FrameCrcError,
    "frame-too-large": FrameTooLargeError,
    "version-mismatch": VersionMismatchError,
    "job-failed": RemoteWorkerError,
    "unknown-kind": RemoteWorkerError,
    "shutting-down": WorkerUnavailableError,
}


def _default_retry():
    """The connect/transient-fault policy when none is given: the PR 6
    :class:`~repro.archive.backend.RetryPolicy` with a short backoff —
    absorbing startup races and transient refusals before the pool
    escalates to reassignment."""
    from ..archive.backend import RetryPolicy

    return RetryPolicy(attempts=3, base_delay=0.05, max_delay=0.5)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def _dump(obj) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _load(data: bytes):
    try:
        return pickle.loads(data)
    except Exception as exc:
        raise ProtocolError(f"frame payload does not unpickle: {exc}") from exc


def _frame_crc(msg_type: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(bytes([msg_type]))) & 0xFFFFFFFF


def send_message(
    sock: socket.socket,
    msg_type: int,
    payload: bytes,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> None:
    """Send one framed message (length prefix + CRC + type + payload)."""
    if len(payload) > max_frame_bytes:
        raise FrameTooLargeError(
            f"{_MESSAGE_NAMES.get(msg_type, msg_type)} payload of "
            f"{len(payload)} bytes exceeds the {max_frame_bytes}-byte frame cap"
        )
    head = _FRAME_HEAD.pack(len(payload), _frame_crc(msg_type, payload), msg_type)
    sock.sendall(head + payload)


def _recv_exact(sock: socket.socket, count: int, what: str, *, at_boundary: bool):
    """Read exactly ``count`` bytes; ``None`` on a clean EOF at a frame
    boundary (only when ``at_boundary``), :class:`ProtocolError` on EOF
    anywhere else (a truncated frame)."""
    buf = bytearray()
    while len(buf) < count:
        chunk = sock.recv(count - len(buf))
        if not chunk:
            if at_boundary and not buf:
                return None
            raise ProtocolError(
                f"connection closed inside {what} ({len(buf)} of {count} bytes)"
            )
        buf += chunk
    return bytes(buf)


def recv_message(
    sock: socket.socket, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Optional[Tuple[int, bytes]]:
    """Receive one framed message as ``(type, payload)``.

    Returns ``None`` on a clean connection close between frames.  Raises
    :class:`ProtocolError` on a truncated length prefix or payload,
    :class:`FrameTooLargeError` when the declared length exceeds the cap
    (checked *before* allocating), and :class:`FrameCrcError` when the
    payload fails its checksum.
    """
    head = _recv_exact(sock, _FRAME_HEAD.size, "a frame header", at_boundary=True)
    if head is None:
        return None
    length, crc, msg_type = _FRAME_HEAD.unpack(head)
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame declares {length} payload bytes, above the "
            f"{max_frame_bytes}-byte cap"
        )
    payload = _recv_exact(sock, length, "a frame payload", at_boundary=False)
    if _frame_crc(msg_type, payload) != crc:
        raise FrameCrcError(
            f"{_MESSAGE_NAMES.get(msg_type, msg_type)} frame failed its CRC check"
        )
    return msg_type, payload


def parse_worker_addresses(
    workers: Union[str, Sequence],
) -> List[Tuple[str, int]]:
    """Parse ``"host:port,host:port"`` (or a list of such / of pairs)."""
    if isinstance(workers, str):
        workers = [part for part in workers.split(",") if part.strip()]
    addresses: List[Tuple[str, int]] = []
    for item in workers:
        if isinstance(item, str):
            host, sep, port = item.strip().rpartition(":")
            if not sep or not host:
                raise ValueError(
                    f"worker address {item!r} is not of the form host:port"
                )
            try:
                addresses.append((host, int(port)))
            except ValueError:
                raise ValueError(
                    f"worker address {item!r} has a non-integer port"
                ) from None
        else:
            host, port = item
            addresses.append((str(host), int(port)))
    if not addresses:
        raise ValueError("no worker addresses given")
    return addresses


def _format_address(address: Tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------

def _job_compress(payload: Dict) -> Dict:
    """SUBMIT kind ``compress``: serial-compress one frame shard."""
    batch = compress_frames(payload["items"], spec=payload["spec"])
    return {"items": batch.streams, "stats": batch.stats}


def _job_decompress(payload: Dict) -> Dict:
    """SUBMIT kind ``decompress``: serial-decode one stream shard."""
    frames, stats = decompress_frames(
        CompressedBatch.from_spec(payload["spec"], payload["items"])
    )
    return {"items": frames, "stats": stats}


def _job_verify_copy(payload: Dict) -> Dict:
    """SUBMIT kind ``verify_copy``: verify one archive container (the
    sharded set's per-copy unit; the worker must see the same filesystem,
    exactly like the fork-pool verify workers it replaces)."""
    from ..archive.sharding import _verify_copy_worker

    return _verify_copy_worker(
        payload["target"],
        payload["deep"],
        payload["engine"],
        payload["verify_checksums"],
    )


def _job_verify_frames(payload: Dict) -> Dict:
    """SUBMIT kind ``verify_frames``: verify a frame shard of one archive."""
    from ..archive.reader import _verify_frames_worker

    return {
        "payload_bytes": _verify_frames_worker(
            payload["path"],
            payload["indices"],
            payload["deep"],
            payload["engine"],
            payload["verify_checksums"],
        )
    }


def _job_echo(payload):
    """SUBMIT kind ``echo``: liveness/diagnostics — returns the payload."""
    return payload


DEFAULT_HANDLERS: Dict[str, Callable] = {
    "compress": _job_compress,
    "decompress": _job_decompress,
    "verify_copy": _job_verify_copy,
    "verify_frames": _job_verify_frames,
    "echo": _job_echo,
}


class SocketWorker:
    """One socket worker: accept loop, handshake, job execution.

    Every connection is served by its own thread; jobs run the ordinary
    serial pipeline, so the bytes a worker produces are the bytes serial
    execution produces.  A protocol violation costs only the offending
    connection (best-effort typed ERROR reply, then close) — the accept
    loop keeps serving, and ``protocol_errors`` counts what was dropped.

    ``node`` is the worker's stable identity for the archive layer's
    placement maps (``--node`` on the CLI); it defaults to ``pid-<pid>``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        node: Optional[str] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        handlers: Optional[Dict[str, Callable]] = None,
    ) -> None:
        self.node = node if node else f"pid-{os.getpid()}"
        self.max_frame_bytes = int(max_frame_bytes)
        self.handlers = dict(DEFAULT_HANDLERS if handlers is None else handlers)
        self._requested = (host, int(port))
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._sock: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._conns: set = set()
        self._closing = threading.Event()
        self._lock = threading.Lock()
        self._started = time.monotonic()
        #: Jobs executed successfully (total and per kind), connections
        #: accepted, and frames dropped for protocol violations.
        self.jobs_done = 0
        self.jobs_by_kind: Dict[str, int] = {}
        self.connections = 0
        self.protocol_errors = 0

    # -- lifecycle ----------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, listen and start the accept loop; returns ``(host, port)``."""
        self._sock = socket.create_server(self._requested)
        self.host, self.port = self._sock.getsockname()[:2]
        self._started = time.monotonic()
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"netexec-worker-{self.port}", daemon=True
        )
        self._thread.start()
        return self.host, self.port

    @property
    def address(self) -> str:
        """``host:port`` once started."""
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block until the worker is shut down (SHUTDOWN frame or close)."""
        self._closing.wait()

    def close(self) -> None:
        """Stop accepting and close every open connection."""
        self._closing.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - racing close
                pass

    def __enter__(self) -> "SocketWorker":
        if self._sock is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- serving ------------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                break
            with self._lock:
                self.connections += 1
                self._conns.add(conn)
            threading.Thread(
                target=self._handle_conn, args=(conn,), daemon=True
            ).start()

    def _send_error(
        self, conn: socket.socket, code: str, message: str, job: Optional[int] = None
    ) -> None:
        """Best-effort typed ERROR reply (the peer may already be gone)."""
        try:
            send_message(
                conn,
                MSG_ERROR,
                _dump({"code": code, "message": message, "job": job}),
                self.max_frame_bytes,
            )
        except OSError:
            pass

    def _note_protocol_error(self) -> None:
        with self._lock:
            self.protocol_errors += 1

    def _handle_conn(self, conn: socket.socket) -> None:
        try:
            greeted = False
            while not self._closing.is_set():
                try:
                    message = recv_message(conn, self.max_frame_bytes)
                except FrameTooLargeError as exc:
                    self._note_protocol_error()
                    self._send_error(conn, "frame-too-large", str(exc))
                    break
                except FrameCrcError as exc:
                    self._note_protocol_error()
                    self._send_error(conn, "bad-crc", str(exc))
                    break
                except ProtocolError:
                    # A truncated frame means the stream cannot be resynced
                    # (and usually that the peer is gone): drop silently.
                    self._note_protocol_error()
                    break
                if message is None:
                    break
                msg_type, payload = message
                if msg_type == MSG_HELLO:
                    greeted = self._handle_hello(conn, payload)
                    if not greeted:
                        break
                elif not greeted:
                    self._note_protocol_error()
                    self._send_error(
                        conn,
                        "protocol",
                        f"{_MESSAGE_NAMES.get(msg_type, msg_type)} before the "
                        "HELLO handshake",
                    )
                    break
                elif msg_type == MSG_SUBMIT:
                    self._handle_submit(conn, payload)
                elif msg_type == MSG_HEARTBEAT:
                    send_message(
                        conn,
                        MSG_HEARTBEAT_OK,
                        _dump(self.status()),
                        self.max_frame_bytes,
                    )
                elif msg_type == MSG_SHUTDOWN:
                    try:
                        send_message(
                            conn, MSG_SHUTDOWN_OK, _dump(self.status()), self.max_frame_bytes
                        )
                    finally:
                        self.close()
                    break
                else:
                    self._note_protocol_error()
                    self._send_error(
                        conn,
                        "protocol",
                        f"unexpected message type "
                        f"{_MESSAGE_NAMES.get(msg_type, msg_type)}",
                    )
                    break
        except OSError:
            pass
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - racing close
                pass

    def _handle_hello(self, conn: socket.socket, payload: bytes) -> bool:
        try:
            hello = _load(payload)
            version = hello.get("version")
        except (ProtocolError, AttributeError):
            self._note_protocol_error()
            self._send_error(conn, "protocol", "HELLO payload is not a handshake")
            return False
        if version != PROTOCOL_VERSION:
            self._send_error(
                conn,
                "version-mismatch",
                f"client speaks protocol version {version!r}, worker speaks "
                f"{PROTOCOL_VERSION}",
            )
            return False
        send_message(
            conn,
            MSG_HELLO_OK,
            _dump(
                {
                    "version": PROTOCOL_VERSION,
                    "node": self.node,
                    "capabilities": sorted(self.handlers),
                    "pid": os.getpid(),
                }
            ),
            self.max_frame_bytes,
        )
        return True

    def _handle_submit(self, conn: socket.socket, payload: bytes) -> None:
        try:
            job = _load(payload)
            job_id = job.get("job")
            kind = job.get("kind")
        except (ProtocolError, AttributeError):
            self._note_protocol_error()
            self._send_error(conn, "protocol", "SUBMIT payload is not a job")
            return
        handler = self.handlers.get(kind)
        if handler is None:
            self._send_error(
                conn,
                "unknown-kind",
                f"worker has no handler for job kind {kind!r} "
                f"(capabilities: {sorted(self.handlers)})",
                job=job_id,
            )
            return
        try:
            result = handler(job.get("payload"))
        except Exception as exc:
            self._send_error(
                conn, "job-failed", f"{type(exc).__name__}: {exc}", job=job_id
            )
            return
        with self._lock:
            self.jobs_done += 1
            self.jobs_by_kind[kind] = self.jobs_by_kind.get(kind, 0) + 1
        send_message(
            conn,
            MSG_RESULT,
            _dump({"job": job_id, "payload": result}),
            self.max_frame_bytes,
        )

    def status(self) -> Dict[str, object]:
        """Liveness counters (the HEARTBEAT_OK payload)."""
        with self._lock:
            return {
                "node": self.node,
                "pid": os.getpid(),
                "jobs_done": self.jobs_done,
                "jobs_by_kind": dict(self.jobs_by_kind),
                "connections": self.connections,
                "protocol_errors": self.protocol_errors,
                "uptime_s": time.monotonic() - self._started,
            }


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------

class WorkerClient:
    """One framed TCP connection to one worker (thread-safe, one RPC at a
    time per connection)."""

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        timeout: float = 60.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        (self._address,) = parse_worker_addresses([address])
        self.timeout = timeout
        self.max_frame_bytes = int(max_frame_bytes)
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._job = 0
        #: Filled by the HELLO handshake.
        self.node: Optional[str] = None
        self.capabilities: Tuple[str, ...] = ()
        self.worker_pid: Optional[int] = None

    @property
    def address(self) -> str:
        return _format_address(self._address)

    @property
    def connected(self) -> bool:
        return self._sock is not None

    # -- plumbing -----------------------------------------------------------------------
    def connect(self) -> "WorkerClient":
        """Open the connection and run the HELLO handshake."""
        if self._sock is not None:
            return self
        try:
            sock = socket.create_connection(self._address, timeout=self.timeout)
        except OSError as exc:
            raise exc  # transient: left as OSError for RetryPolicy ladders
        sock.settimeout(self.timeout)
        self._sock = sock
        try:
            send_message(sock, MSG_HELLO, _dump({"version": PROTOCOL_VERSION}),
                         self.max_frame_bytes)
            reply = self._expect(MSG_HELLO_OK)
        except BaseException:
            self.close()
            raise
        if reply.get("version") != PROTOCOL_VERSION:
            self.close()
            raise VersionMismatchError(
                f"worker {self.address} speaks protocol {reply.get('version')!r}, "
                f"client speaks {PROTOCOL_VERSION}"
            )
        self.node = reply.get("node")
        self.capabilities = tuple(reply.get("capabilities", ()))
        self.worker_pid = reply.get("pid")
        return self

    def _expect(self, wanted: int) -> Dict:
        """Read one reply frame, mapping ERROR frames and closes to typed
        exceptions."""
        try:
            message = recv_message(self._sock, self.max_frame_bytes)
        except socket.timeout as exc:
            raise WorkerUnavailableError(
                f"worker {self.address} did not reply within {self.timeout}s"
            ) from exc
        if message is None:
            raise WorkerUnavailableError(
                f"worker {self.address} closed the connection mid-call"
            )
        msg_type, payload = message
        if msg_type == MSG_ERROR:
            info = _load(payload)
            exc_class = _ERROR_CODES.get(info.get("code"), RemoteWorkerError)
            raise exc_class(f"worker {self.address}: {info.get('message')}")
        if msg_type != wanted:
            raise ProtocolError(
                f"worker {self.address} sent "
                f"{_MESSAGE_NAMES.get(msg_type, msg_type)}, expected "
                f"{_MESSAGE_NAMES[wanted]}"
            )
        return _load(payload)

    # -- RPCs ---------------------------------------------------------------------------
    def call(self, kind: str, payload) -> Dict:
        """SUBMIT one job and wait for its RESULT."""
        with self._lock:
            if self._sock is None:
                raise WorkerUnavailableError(
                    f"worker {self.address} is not connected"
                )
            self._job += 1
            job_id = self._job
            try:
                send_message(
                    self._sock,
                    MSG_SUBMIT,
                    _dump({"job": job_id, "kind": kind, "payload": payload}),
                    self.max_frame_bytes,
                )
                reply = self._expect(MSG_RESULT)
            except OSError as exc:
                raise WorkerUnavailableError(
                    f"worker {self.address} failed mid-call: {exc}"
                ) from exc
            if reply.get("job") != job_id:
                raise ProtocolError(
                    f"worker {self.address} answered job {reply.get('job')!r}, "
                    f"expected {job_id}"
                )
            return reply["payload"]

    def heartbeat(self) -> Dict:
        """HEARTBEAT round trip; returns the worker's liveness counters."""
        with self._lock:
            try:
                send_message(self._sock, MSG_HEARTBEAT, _dump({}), self.max_frame_bytes)
                return self._expect(MSG_HEARTBEAT_OK)
            except OSError as exc:
                raise WorkerUnavailableError(
                    f"worker {self.address} failed mid-heartbeat: {exc}"
                ) from exc

    def shutdown(self) -> Dict:
        """Ask the worker to drain and exit; returns its final counters."""
        with self._lock:
            try:
                send_message(self._sock, MSG_SHUTDOWN, _dump({}), self.max_frame_bytes)
                return self._expect(MSG_SHUTDOWN_OK)
            except OSError as exc:
                raise WorkerUnavailableError(
                    f"worker {self.address} failed mid-shutdown: {exc}"
                ) from exc

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - racing close
                pass
            self._sock = None

    def __enter__(self) -> "WorkerClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Pool
# ---------------------------------------------------------------------------

class WorkerPool:
    """A set of socket workers with routing, retry and reassignment.

    Connections open lazily and the HELLO handshake records each worker's
    node id, so jobs can be routed to a *preferred node* (the archive
    layer's placement maps) with any-worker fallback.  A worker that
    cannot be reached — or dies mid-SUBMIT — is marked dead
    (``worker_failures``) and its job is **reassigned** to the next live
    worker (``reassignments``); only when no live worker remains does
    :class:`WorkerUnavailableError` propagate.  Transient connect faults
    are absorbed first by ``retry`` (a PR 6
    :class:`~repro.archive.backend.RetryPolicy`), so the ladder reads
    retry → reassign → fail, exactly like the archive's read ladder.

    Deterministic job failures (:class:`RemoteWorkerError`) are *not*
    reassigned — they would fail identically everywhere.
    """

    def __init__(
        self,
        workers: Union[str, Sequence],
        retry=None,
        timeout: float = 60.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self.addresses = parse_worker_addresses(workers)
        self.retry = retry if retry is not None else _default_retry()
        self.timeout = timeout
        self.max_frame_bytes = int(max_frame_bytes)
        self._clients: Dict[int, WorkerClient] = {}
        self._dead: Dict[int, str] = {}
        self._nodes: Dict[str, int] = {}
        self._rr = 0
        self._lock = threading.RLock()
        #: Workers marked dead (unreachable or died mid-call) and jobs
        #: that had to move to another worker because of it.
        self.worker_failures = 0
        self.reassignments = 0
        #: Jobs completed through this pool.
        self.submits = 0

    @classmethod
    def from_any(cls, workers) -> Tuple["WorkerPool", bool]:
        """``(pool, owns)``: pass an existing pool through (borrowed),
        build one from addresses (owned — the caller should disconnect)."""
        if isinstance(workers, WorkerPool):
            return workers, False
        if isinstance(workers, SocketPoolExecutor):
            return workers.pool, False
        return cls(workers), True

    # -- bookkeeping --------------------------------------------------------------------
    @property
    def width(self) -> int:
        return len(self.addresses)

    def live_indices(self) -> List[int]:
        with self._lock:
            return [i for i in range(self.width) if i not in self._dead]

    @property
    def live_count(self) -> int:
        return len(self.live_indices())

    def nodes(self) -> Dict[str, str]:
        """Node id → address of every worker whose handshake completed."""
        with self._lock:
            return {
                node: _format_address(self.addresses[i])
                for node, i in self._nodes.items()
            }

    def _mark_dead(self, index: int, exc: BaseException) -> None:
        with self._lock:
            if index in self._dead:
                return
            self._dead[index] = f"{type(exc).__name__}: {exc}"
            self.worker_failures += 1
            client = self._clients.pop(index, None)
        if client is not None:
            client.close()

    def _client(self, index: int) -> WorkerClient:
        """The worker's connected client, connecting (with retry) if needed."""
        with self._lock:
            client = self._clients.get(index)
            if client is not None:
                return client
            client = WorkerClient(
                self.addresses[index],
                timeout=self.timeout,
                max_frame_bytes=self.max_frame_bytes,
            )
            self.retry.run(client.connect)
            self._clients[index] = client
            if client.node:
                self._nodes.setdefault(client.node, index)
            return client

    def ensure_connected(self) -> List[int]:
        """Connect every not-yet-dead worker; returns the live indices.

        Unreachable workers are marked dead (after ``retry``); raises
        :class:`WorkerUnavailableError` only when *none* is reachable.
        """
        for index in self.live_indices():
            try:
                self._client(index)
            except (OSError, NetExecError) as exc:
                self._mark_dead(index, exc)
        live = self.live_indices()
        if not live:
            raise WorkerUnavailableError(self._dead_summary())
        return live

    def _dead_summary(self) -> str:
        with self._lock:
            details = "; ".join(
                f"{_format_address(self.addresses[i])}: {reason}"
                for i, reason in sorted(self._dead.items())
            )
        return f"no live workers left ({details})"

    # -- routing ------------------------------------------------------------------------
    def _candidates(
        self, preferred_index: Optional[int], preferred_node: Optional[str]
    ) -> List[int]:
        with self._lock:
            live = [i for i in range(self.width) if i not in self._dead]
            if not live:
                return []
            start = None
            if preferred_node is not None and preferred_node in self._nodes:
                node_index = self._nodes[preferred_node]
                if node_index in live:
                    start = node_index
            if start is None and preferred_index is not None and preferred_index in live:
                start = preferred_index
            if start is None:
                start = live[self._rr % len(live)]
                self._rr += 1
            pivot = live.index(start)
            return live[pivot:] + live[:pivot]

    def call(
        self,
        kind: str,
        payload,
        preferred_index: Optional[int] = None,
        preferred_node: Optional[str] = None,
    ) -> Tuple[Dict, Optional[str]]:
        """Run one job, with failover: returns ``(result, node id served by)``.

        Tries the preferred node (if known and alive), else the preferred
        index, else round-robin; on a dead or misbehaving worker the job
        moves to the next live candidate (``reassignments``).
        """
        errors: List[str] = []
        while True:
            candidates = self._candidates(preferred_index, preferred_node)
            if not candidates:
                raise WorkerUnavailableError(
                    self._dead_summary()
                    + (f"; this job saw: {'; '.join(errors)}" if errors else "")
                )
            index = candidates[0]
            try:
                client = self._client(index)
            except (OSError, NetExecError) as exc:
                if isinstance(exc, (RemoteWorkerError, VersionMismatchError)):
                    raise
                self._mark_dead(index, exc)
                errors.append(f"{_format_address(self.addresses[index])}: {exc}")
                if len(candidates) > 1:
                    with self._lock:
                        self.reassignments += 1
                continue
            try:
                result = client.call(kind, payload)
            except RemoteWorkerError:
                raise
            except (WorkerUnavailableError, ProtocolError, OSError) as exc:
                self._mark_dead(index, exc)
                errors.append(f"{client.address}: {exc}")
                if len(candidates) > 1:
                    with self._lock:
                        self.reassignments += 1
                continue
            with self._lock:
                self.submits += 1
            return result, client.node

    # -- lifecycle ----------------------------------------------------------------------
    def disconnect(self) -> None:
        """Close every open connection (dead-markings and counters stay)."""
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            client.close()

    def close(self) -> None:
        self.disconnect()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.disconnect()


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------

class SocketPoolExecutor:
    """Shards frame batches across a pool of socket workers.

    The drop-in network peer of
    :class:`~repro.coding.executor.ParallelExecutor`: same shard contract
    (spec + shard in, streams + stats out), same frame-order merge
    (:func:`~repro.coding.executor.merge_shard_results`), and therefore
    the same guarantee — output **byte-identical** to serial execution —
    with the worker-death → reassignment ladder of :class:`WorkerPool`
    underneath.

    ``workers`` may be an ``"host:port,host:port"`` string, a list of
    addresses, or a ready :class:`WorkerPool`.  A pool built here from
    addresses is *owned*: its connections are closed after each batch (and
    on :meth:`close`), so one-shot ``compress_frames(...,
    workers="...")`` calls never leak sockets.  A caller-provided pool is
    borrowed and its connections persist across batches.
    """

    def __init__(self, workers, retry=None) -> None:
        if isinstance(workers, SocketPoolExecutor):
            self.pool, self._owns_pool = workers.pool, False
        elif isinstance(workers, WorkerPool):
            self.pool, self._owns_pool = workers, False
        else:
            self.pool, self._owns_pool = WorkerPool(workers, retry=retry), True

    @property
    def workers(self) -> int:
        """Pool width (address count), for stats parity with the fork pool."""
        return self.pool.width

    # -- helpers ------------------------------------------------------------------------
    def _run_sharded(self, kind: str, spec: CodecSpec, items: List):
        from concurrent.futures import ThreadPoolExecutor

        began = time.perf_counter()
        try:
            live = self.pool.ensure_connected()
            shards = shard_indices(len(items), len(live))
            with ThreadPoolExecutor(max_workers=len(shards)) as threads:
                futures = [
                    threads.submit(
                        self.pool.call,
                        kind,
                        {"spec": spec, "items": [items[i] for i in indices]},
                        live[position % len(live)],
                    )
                    for position, indices in enumerate(shards)
                ]
                results = [future.result() for future in futures]
        finally:
            if self._owns_pool:
                self.pool.disconnect()
        wall = time.perf_counter() - began
        merged_items, stats = merge_shard_results(
            shards, [(r["items"], r["stats"]) for r, _node in results], len(items)
        )
        stats.workers = len(shards)
        stats.wall_seconds = wall
        return merged_items, stats

    # -- public API ---------------------------------------------------------------------
    def compress(
        self,
        frames: Sequence[np.ndarray],
        spec: Optional[CodecSpec] = None,
        **spec_kwargs,
    ) -> CompressedBatch:
        """Compress a batch across the socket pool; byte-identical to serial."""
        if spec is None:
            spec = CodecSpec.from_kwargs(**spec_kwargs)
        else:
            reject_spec_overrides(spec_kwargs)
        frames = [np.asarray(frame) for frame in frames]
        if not frames:
            return compress_frames(frames, spec=spec)
        streams, stats = self._run_sharded("compress", spec, frames)
        return CompressedBatch.from_spec(spec, streams, stats)

    def decompress(
        self, batch: CompressedBatch, spec: Optional[CodecSpec] = None
    ) -> Tuple[List[np.ndarray], PipelineStats]:
        """Decode a batch across the socket pool; bit-identical to serial."""
        spec = spec if spec is not None else batch.resolved_spec()
        if not batch.streams:
            if batch.spec != spec:
                batch = CompressedBatch.from_spec(spec, batch.streams)
            return decompress_frames(batch)
        return self._run_sharded("decompress", spec, list(batch.streams))

    def close(self) -> None:
        if self._owns_pool:
            self.pool.disconnect()

    def __enter__(self) -> "SocketPoolExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Local worker processes (benchmarks, tests, CI)
# ---------------------------------------------------------------------------

def start_local_worker(
    node: Optional[str] = None,
    host: str = "127.0.0.1",
    timeout: float = 30.0,
) -> Tuple[subprocess.Popen, str]:
    """Start one ``python -m repro.netexec worker`` subprocess on an
    ephemeral port; returns ``(process, "host:port")`` once it is ready
    (the worker prints ``ready <host> <port>`` when listening)."""
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    command = [sys.executable, "-m", "repro.netexec", "worker", "--listen", f"{host}:0"]
    if node is not None:
        command += ["--node", node]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line or process.poll() is not None:
            break
    parts = line.split()
    if len(parts) != 3 or parts[0] != "ready":
        stderr = ""
        if process.poll() is not None:
            stderr = process.stderr.read()
        process.kill()
        raise WorkerUnavailableError(
            f"worker process did not come up (got {line!r}): {stderr.strip()}"
        )
    return process, f"{parts[1]}:{parts[2]}"


@contextmanager
def local_worker_pool(count: int, nodes: Optional[Sequence[str]] = None):
    """Spawn ``count`` local worker processes; yields their address list
    and terminates them on exit.  ``nodes`` names them for placement maps."""
    processes: List[subprocess.Popen] = []
    addresses: List[str] = []
    try:
        for i in range(count):
            node = nodes[i] if nodes is not None else None
            process, address = start_local_worker(node=node)
            processes.append(process)
            addresses.append(address)
        yield addresses
    finally:
        for process in processes:
            process.terminate()
        for process in processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                process.kill()


# ---------------------------------------------------------------------------
# CLI (python -m repro.netexec)
# ---------------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.netexec {worker,ping,shutdown}``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.netexec",
        description="socket pool workers for distributed batch execution",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser("worker", help="serve compress/decompress/verify jobs")
    worker.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address (default 127.0.0.1:0 = ephemeral port; the "
        "worker prints 'ready <host> <port>' once listening)",
    )
    worker.add_argument(
        "--node",
        default=None,
        help="stable node id for manifest placement maps (default pid-<pid>)",
    )
    worker.add_argument(
        "--max-frame-bytes",
        type=int,
        default=MAX_FRAME_BYTES,
        metavar="N",
        help=f"reject frames above N payload bytes (default {MAX_FRAME_BYTES})",
    )

    ping = sub.add_parser("ping", help="heartbeat one worker, print its counters")
    ping.add_argument("address", metavar="HOST:PORT")

    shutdown = sub.add_parser("shutdown", help="drain and stop one worker")
    shutdown.add_argument("address", metavar="HOST:PORT")

    args = parser.parse_args(argv)
    if args.command == "worker":
        (address,) = parse_worker_addresses([args.listen])
        if args.max_frame_bytes < 1:
            parser.error("--max-frame-bytes must be >= 1")
        served = SocketWorker(
            address[0],
            address[1],
            node=args.node,
            max_frame_bytes=args.max_frame_bytes,
        )
        host, port = served.start()
        print(f"ready {host} {port}", flush=True)
        try:
            served.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            served.close()
        return 0

    import json

    try:
        with WorkerClient(args.address) as client:
            status = client.shutdown() if args.command == "shutdown" else client.heartbeat()
    except (NetExecError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(status, sort_keys=True))
    return 0
