"""Coefficient-domain lossless codec (library extension, not a paper result).

The paper designs the transform hardware for "lossless compression of
medical images" but does not describe the entropy-coding back end.  This
module supplies the coefficient-exact back end:

1. the image is transformed with the bit-exact fixed-point DWT
   (:class:`~repro.fxdwt.transform.FixedPointDWT`, the same arithmetic the
   hardware performs),
2. each subband of stored integer coefficients is mapped to non-negative
   symbols (zig-zag) and entropy coded with a per-subband Rice code
   (optionally preceded by zero run-length coding),
3. decoding reverses the steps and finishes with the fixed-point inverse
   transform, recovering the original 12-bit image bit for bit.

The codec never quantises, so losslessness follows directly from the
lossless transform round trip that the paper's word-length analysis
guarantees — which is exactly the property the test suite asserts.

Note on compressed size: the stored coefficients keep all the fractional
bits the 32-bit word-length plan requires, so this *coefficient-exact*
stream is a faithful model of what the paper's hardware would hand to a
back-end coder but is generally **larger** than the raw 12-bit image.  For
an extension codec that genuinely shrinks medical images losslessly, use
:class:`repro.coding.s_transform.STransformCodec`, which replaces the
filter-bank transform with a reversible integer (lifting) transform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dwt.subbands import ScaleDetails
from ..filters.catalog import get_bank
from ..filters.qmf import BiorthogonalBank
from ..fixedpoint.wordlength import WordLengthPlan, plan_word_lengths
from ..fxdwt.transform import FixedPointDWT, FixedPointPyramid
from .mapper import zigzag_decode, zigzag_encode
from .rice import (
    rice_decode_array,
    rice_decode_array_turbo,
    rice_decode_scalar,
    rice_encode,
    rice_encode_scalar,
)
from .rle import (
    LITERAL,
    ZERO_RUN,
    RleEvent,
    events_to_arrays,
    rle_decode,
    rle_decode_arrays,
    rle_encode,
    rle_encode_arrays,
)

__all__ = ["SubbandChunk", "CompressedImage", "LosslessWaveletCodec"]


@dataclass(frozen=True)
class SubbandChunk:
    """One entropy-coded subband."""

    kind: str          # "HH", "HG", "GH" or "GG"
    scale: int
    shape: Tuple[int, int]
    use_rle: bool
    payload: bytes
    run_payload: bytes = b""

    @property
    def byte_size(self) -> int:
        return len(self.payload) + len(self.run_payload)


@dataclass
class CompressedImage:
    """Complete compressed representation of one image."""

    bank_name: str
    scales: int
    image_shape: Tuple[int, int]
    bit_depth: int
    chunks: List[SubbandChunk] = field(default_factory=list)

    @property
    def compressed_bytes(self) -> int:
        """Payload size (entropy-coded subbands, excluding the tiny header)."""
        return sum(chunk.byte_size for chunk in self.chunks)

    @property
    def original_bytes(self) -> int:
        """Size of the raw image at its native bit depth (rounded up to bytes)."""
        pixels = self.image_shape[0] * self.image_shape[1]
        return (pixels * self.bit_depth + 7) // 8

    @property
    def compression_ratio(self) -> float:
        """original / compressed (> 1 means the codec saved space)."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes

    @property
    def bits_per_pixel(self) -> float:
        pixels = self.image_shape[0] * self.image_shape[1]
        return 8.0 * self.compressed_bytes / pixels if pixels else 0.0

    def chunk(self, kind: str, scale: int) -> SubbandChunk:
        for chunk in self.chunks:
            if chunk.kind == kind and chunk.scale == scale:
                return chunk
        raise KeyError(f"no chunk for subband {kind}@{scale}")

    def size_by_scale(self) -> Dict[int, int]:
        """Compressed bytes per scale (diagnostics for the examples)."""
        sizes: Dict[int, int] = {}
        for chunk in self.chunks:
            sizes[chunk.scale] = sizes.get(chunk.scale, 0) + chunk.byte_size
        return sizes


class LosslessWaveletCodec:
    """Lossless compressor built on the bit-exact fixed-point DWT.

    Parameters
    ----------
    bank:
        Filter bank (a :class:`BiorthogonalBank` or a Table I name).
    scales:
        Number of decomposition scales.
    bit_depth:
        Bit depth of the input images (12 for the paper's medical images).
    use_rle:
        Whether to run zero run-length coding before the Rice coder on the
        detail subbands (the approximation subband is never run-length coded,
        it has essentially no zeros).
    plan:
        Optional word-length plan override for the underlying transform.
    engine:
        Entropy-coding implementation tier: ``"fast"`` (vectorised),
        ``"scalar"`` (the bit-by-bit reference) or ``"turbo"`` (prefix-LUT /
        bit-window decoding; encoding reuses the fast encoders).  All tiers
        produce byte-identical streams; any engine decodes any other's
        output.  ``None`` (the default) resolves through
        :func:`repro.coding.spec.default_engine`.
    """

    def __init__(
        self,
        bank: BiorthogonalBank | str = "F2",
        scales: int = 4,
        bit_depth: int = 12,
        use_rle: bool = True,
        plan: Optional[WordLengthPlan] = None,
        engine: Optional[str] = None,
    ) -> None:
        # Imported here, not at module top: the registry module imports this
        # one while it initialises (see spec._register_builtin_families).
        from .spec import ENGINE_NAMES, default_engine

        if isinstance(bank, str):
            bank = get_bank(bank)
        if bit_depth < 1 or bit_depth > 16:
            raise ValueError("bit_depth must be in [1, 16]")
        if engine is None:
            engine = default_engine()
        if engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {engine!r} (expected one of {ENGINE_NAMES})"
            )
        self.bank = bank
        self.scales = scales
        self.bit_depth = bit_depth
        self.use_rle = use_rle
        self.engine = engine
        self.plan = plan if plan is not None else plan_word_lengths(bank, scales)
        self.transform = FixedPointDWT(bank, scales, plan=self.plan)

    # -- stage API (used by the batched pipeline for per-stage timing) ------------------
    def validate_image(self, image: np.ndarray) -> np.ndarray:
        """Check shape and declared bit-depth range; return the image as given.

        Shared by :meth:`forward_transform` and the batched pipeline's
        accelerator-transform path, so both transform back ends accept
        exactly the same inputs.
        """
        image = np.asarray(image)
        if image.ndim != 2:
            raise ValueError("the codec compresses 2-D images")
        if image.min() < 0 or image.max() >= (1 << self.bit_depth):
            raise ValueError(
                f"image values outside the declared {self.bit_depth}-bit range"
            )
        return image

    def forward_transform(self, image: np.ndarray) -> FixedPointPyramid:
        """Validate the image and run the bit-exact fixed-point forward DWT."""
        image = self.validate_image(image)
        return self.transform.forward(np.asarray(image, dtype=np.int64))

    def encode_pyramid(
        self, pyramid: FixedPointPyramid, image_shape: Tuple[int, int]
    ) -> CompressedImage:
        """Entropy code every subband of a transformed pyramid."""
        compressed = CompressedImage(
            bank_name=self.bank.name,
            scales=self.scales,
            image_shape=(int(image_shape[0]), int(image_shape[1])),
            bit_depth=self.bit_depth,
        )
        compressed.chunks.append(
            self._encode_band("HH", self.scales, pyramid.approximation, allow_rle=False)
        )
        for entry in reversed(pyramid.details):
            for kind, band in entry.as_dict().items():
                compressed.chunks.append(
                    self._encode_band(kind, entry.scale, band, allow_rle=self.use_rle)
                )
        return compressed

    def decode_pyramid(self, compressed: CompressedImage) -> FixedPointPyramid:
        """Entropy decode a stream back into a fixed-point pyramid."""
        if compressed.bank_name != self.bank.name or compressed.scales != self.scales:
            raise ValueError(
                "compressed stream was produced with a different codec configuration "
                f"({compressed.bank_name}/{compressed.scales} vs "
                f"{self.bank.name}/{self.scales})"
            )
        approximation = self._decode_band(compressed.chunk("HH", self.scales))
        details: List[ScaleDetails] = []
        for scale in range(1, self.scales + 1):
            details.append(
                ScaleDetails(
                    scale=scale,
                    hg=self._decode_band(compressed.chunk("HG", scale)),
                    gh=self._decode_band(compressed.chunk("GH", scale)),
                    gg=self._decode_band(compressed.chunk("GG", scale)),
                )
            )
        return FixedPointPyramid(
            plan=self.plan, approximation=approximation, details=details
        )

    def inverse_transform(self, pyramid: FixedPointPyramid) -> np.ndarray:
        """Run the bit-exact fixed-point inverse DWT."""
        return self.transform.inverse(pyramid)

    # -- encoding -----------------------------------------------------------------------
    def encode(self, image: np.ndarray) -> CompressedImage:
        """Compress a 2-D integer image losslessly."""
        image = np.asarray(image)
        pyramid = self.forward_transform(image)
        return self.encode_pyramid(pyramid, image.shape)

    def _rice_encode(self, symbols: np.ndarray) -> bytes:
        # The turbo tier is decode-side: its encoders are the fast ones.
        if self.engine == "scalar":
            return rice_encode_scalar(symbols)
        return rice_encode(symbols)

    def _rice_decode(self, payload: bytes) -> np.ndarray:
        if self.engine == "turbo":
            return rice_decode_array_turbo(payload)
        if self.engine == "fast":
            return rice_decode_array(payload)
        return np.asarray(rice_decode_scalar(payload), dtype=np.int64)

    def _encode_band(
        self, kind: str, scale: int, band: np.ndarray, allow_rle: bool
    ) -> SubbandChunk:
        flat = np.asarray(band, dtype=np.int64).ravel()
        if allow_rle:
            # Run lengths and literal values go into two Rice blocks; the
            # event kinds need no extra bitmap because a literal of value 0
            # never occurs (zeros always join runs), so a 0 in the run stream
            # unambiguously marks the next literal.
            if self.engine == "scalar":
                run_symbols, literals = events_to_arrays(rle_encode(flat))
            else:
                run_symbols, literals = rle_encode_arrays(flat)
            payload = self._rice_encode(zigzag_encode(literals))
            run_payload = self._rice_encode(run_symbols)
            return SubbandChunk(
                kind=kind,
                scale=scale,
                shape=(int(band.shape[0]), int(band.shape[1])),
                use_rle=True,
                payload=payload,
                run_payload=run_payload,
            )
        symbols = zigzag_encode(flat)
        payload = self._rice_encode(symbols)
        return SubbandChunk(
            kind=kind,
            scale=scale,
            shape=(int(band.shape[0]), int(band.shape[1])),
            use_rle=False,
            payload=payload,
        )

    # -- decoding -----------------------------------------------------------------------
    def decode(self, compressed: CompressedImage) -> np.ndarray:
        """Reconstruct the original image bit for bit."""
        return self.inverse_transform(self.decode_pyramid(compressed))

    def _check_stream_config(self, compressed: CompressedImage) -> None:
        if compressed.bank_name != self.bank.name or compressed.scales != self.scales:
            raise ValueError(
                "compressed stream was produced with a different codec configuration "
                f"({compressed.bank_name}/{compressed.scales} vs "
                f"{self.bank.name}/{self.scales})"
            )

    def decode_preview(self, compressed: CompressedImage, at_scale: int) -> np.ndarray:
        """Decode only the subbands a scale-``at_scale`` preview needs.

        Entropy decodes the approximation plus the detail subbands coarser
        than ``at_scale`` — a prefix-decoded stream holding just those
        chunks suffices — and stops the synthesis ladder early
        (:meth:`FixedPointDWT.inverse_preview`).  ``at_scale=0`` decodes
        every chunk and equals :meth:`decode` bit for bit.
        """
        self._check_stream_config(compressed)
        if not 0 <= at_scale <= self.scales:
            raise ValueError(
                f"at_scale must be within [0, {self.scales}], got {at_scale}"
            )
        approximation = self._decode_band(compressed.chunk("HH", self.scales))
        details: List[Optional[ScaleDetails]] = [None] * self.scales
        for scale in range(at_scale + 1, self.scales + 1):
            details[scale - 1] = ScaleDetails(
                scale=scale,
                hg=self._decode_band(compressed.chunk("HG", scale)),
                gh=self._decode_band(compressed.chunk("GH", scale)),
                gg=self._decode_band(compressed.chunk("GG", scale)),
            )
        pyramid = FixedPointPyramid(
            plan=self.plan, approximation=approximation, details=details
        )
        return self.transform.inverse_preview(pyramid, at_scale)

    def decode_roi(self, compressed: CompressedImage, y0: int, y1: int) -> np.ndarray:
        """Decode just the output row band ``[y0, y1)``.

        Every subband still entropy decodes (a row band draws on all
        scales), but the synthesis runs windowed
        (:meth:`FixedPointDWT.inverse_roi`), so the result is bit-exact to
        ``decode(compressed)[y0:y1]`` at a fraction of the synthesis work.
        """
        return self.transform.inverse_roi(self.decode_pyramid(compressed), y0, y1)

    def _decode_band(self, chunk: SubbandChunk) -> np.ndarray:
        if chunk.use_rle:
            run_symbols = self._rice_decode(chunk.run_payload)
            literals = zigzag_decode(self._rice_decode(chunk.payload))
            if self.engine != "scalar":
                flat = rle_decode_arrays(run_symbols, literals)
            else:
                events: List[RleEvent] = []
                literal_index = 0
                for run in run_symbols.tolist():
                    if run > 0:
                        events.append(RleEvent(ZERO_RUN, run))
                    else:
                        events.append(RleEvent(LITERAL, int(literals[literal_index])))
                        literal_index += 1
                flat = rle_decode(events)
        else:
            flat = zigzag_decode(self._rice_decode(chunk.payload))
        return np.asarray(flat, dtype=np.int64).reshape(chunk.shape)

    # -- convenience -----------------------------------------------------------------------
    def roundtrip(self, image: np.ndarray) -> Tuple[np.ndarray, CompressedImage]:
        """Compress and immediately decompress; returns (reconstruction, stream)."""
        compressed = self.encode(image)
        return self.decode(compressed), compressed
