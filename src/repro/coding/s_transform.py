"""Reversible integer S-transform codec (compressive lossless extension).

The paper's filter banks operate on fixed-point words whose full precision
must be retained for a lossless round trip, so coefficient-exact coding does
not reduce the stored size (see :mod:`repro.coding.codec`).  The classical
route to *compressive* lossless wavelet coding of medical images — the one
the paper's reference [17] (Hilton, Jawerth & Sengupta) describes — is to
use a reversible integer-to-integer transform instead.  This module
implements the simplest member of that family, the S-transform (integer
Haar via lifting with floor rounding):

.. math::

    d = x_{odd} - x_{even}, \\qquad a = x_{even} + \\lfloor d / 2 \\rfloor

which is exactly invertible in integer arithmetic and maps 12-bit pixels to
small integers that zig-zag + Rice coding shrinks well on smooth medical
content.  The 2-D multi-scale version applies the 1-D step to rows then
columns and recurses on the LL band, mirroring the Mallat pyramid of Fig. 1.

This is an **extension** to make the library usable as an actual compressor;
it is clearly not part of the DATE'98 paper's contribution and no paper
number is derived from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .mapper import zigzag_decode, zigzag_encode
from .rice import (
    rice_decode_array,
    rice_decode_array_turbo,
    rice_decode_scalar,
    rice_encode,
    rice_encode_scalar,
)

__all__ = [
    "s_transform_forward_1d",
    "s_transform_inverse_1d",
    "s_transform_forward_2d",
    "s_transform_inverse_2d",
    "s_transform_inverse_roi",
    "STransformPyramid",
    "STransformCodec",
    "CompressedSImage",
]


# ---------------------------------------------------------------------------
# 1-D lifting steps
# ---------------------------------------------------------------------------

def s_transform_forward_1d(signal: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """One forward S-transform step along the last axis.

    Returns ``(approximation, detail)`` halves; the input length along the
    last axis must be even.  Exactly invertible in integer arithmetic.
    """
    signal = np.asarray(signal)
    if not np.issubdtype(signal.dtype, np.integer):
        raise ValueError("the S-transform operates on integer signals")
    if signal.shape[-1] % 2:
        raise ValueError("signal length must be even")
    even = signal[..., 0::2].astype(np.int64)
    odd = signal[..., 1::2].astype(np.int64)
    detail = odd - even
    approx = even + np.floor_divide(detail, 2)
    return approx, detail


def s_transform_inverse_1d(approx: np.ndarray, detail: np.ndarray) -> np.ndarray:
    """Inverse of :func:`s_transform_forward_1d`."""
    approx = np.asarray(approx, dtype=np.int64)
    detail = np.asarray(detail, dtype=np.int64)
    if approx.shape != detail.shape:
        raise ValueError("approximation and detail must have the same shape")
    even = approx - np.floor_divide(detail, 2)
    odd = detail + even
    out_shape = approx.shape[:-1] + (2 * approx.shape[-1],)
    out = np.zeros(out_shape, dtype=np.int64)
    out[..., 0::2] = even
    out[..., 1::2] = odd
    return out


# ---------------------------------------------------------------------------
# 2-D multi-scale transform
# ---------------------------------------------------------------------------

@dataclass
class STransformPyramid:
    """Subband container of the multi-scale 2-D S-transform."""

    approximation: np.ndarray
    details: List[Dict[str, np.ndarray]] = field(default_factory=list)

    @property
    def scales(self) -> int:
        return len(self.details)


def s_transform_forward_2d(image: np.ndarray, scales: int) -> STransformPyramid:
    """Multi-scale 2-D forward S-transform (rows then columns, recurse on LL)."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError("expected a 2-D image")
    if scales < 1:
        raise ValueError("scales must be >= 1")
    for size in image.shape:
        if size % (1 << scales):
            raise ValueError(
                f"image dimension {size} does not support {scales} dyadic scales"
            )
    data = image.astype(np.int64)
    details: List[Dict[str, np.ndarray]] = []
    for _ in range(scales):
        row_lo, row_hi = s_transform_forward_1d(data)
        ll, lh = s_transform_forward_1d(row_lo.T)
        hl, hh = s_transform_forward_1d(row_hi.T)
        details.append({"HG": lh.T, "GH": hl.T, "GG": hh.T})
        data = ll.T
    return STransformPyramid(approximation=data, details=details)


def s_transform_inverse_2d(pyramid: STransformPyramid) -> np.ndarray:
    """Inverse of :func:`s_transform_forward_2d`."""
    data = np.asarray(pyramid.approximation, dtype=np.int64)
    for bands in reversed(pyramid.details):
        row_lo = s_transform_inverse_1d(data.T, bands["HG"].T).T
        row_hi = s_transform_inverse_1d(bands["GH"].T, bands["GG"].T).T
        data = s_transform_inverse_1d(row_lo, row_hi)
    return data


def s_transform_inverse_roi(
    pyramid: STransformPyramid, y0: int, y1: int
) -> np.ndarray:
    """Inverse S-transform restricted to output rows ``[y0, y1)``.

    The S-transform is non-overlapping (each output row pair draws on one
    coefficient row), so the row window contracts exactly by
    ``(a, b) -> (a // 2, (b - 1) // 2 + 1)`` per scale and never clamps.
    The result is bit-exact to ``s_transform_inverse_2d(pyramid)[y0:y1]``.
    """
    scales = pyramid.scales
    height = pyramid.approximation.shape[0] << scales
    if not 0 <= y0 < y1 <= height:
        raise ValueError(
            f"row band [{y0}, {y1}) is not within the {height}-row image"
        )
    windows = [(y0, y1)]
    for _ in range(scales):
        a, b = windows[-1]
        windows.append((a // 2, (b - 1) // 2 + 1))
    lo, hi = windows[scales]
    data = np.asarray(pyramid.approximation, dtype=np.int64)[lo:hi]
    for level, bands in zip(range(scales, 0, -1), reversed(pyramid.details)):
        in_win = windows[level]
        out_win = windows[level - 1]
        hg = bands["HG"][in_win[0] : in_win[1]]
        gh = bands["GH"][in_win[0] : in_win[1]]
        gg = bands["GG"][in_win[0] : in_win[1]]
        row_lo = s_transform_inverse_1d(data.T, hg.T).T
        row_hi = s_transform_inverse_1d(gh.T, gg.T).T
        start = out_win[0] - 2 * in_win[0]
        stop = out_win[1] - 2 * in_win[0]
        data = s_transform_inverse_1d(row_lo[start:stop], row_hi[start:stop])
    return data


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------

@dataclass
class CompressedSImage:
    """Compressed representation produced by :class:`STransformCodec`."""

    scales: int
    image_shape: Tuple[int, int]
    bit_depth: int
    chunks: Dict[Tuple[str, int], bytes] = field(default_factory=dict)
    shapes: Dict[Tuple[str, int], Tuple[int, int]] = field(default_factory=dict)

    @property
    def compressed_bytes(self) -> int:
        return sum(len(payload) for payload in self.chunks.values())

    @property
    def original_bytes(self) -> int:
        pixels = self.image_shape[0] * self.image_shape[1]
        return (pixels * self.bit_depth + 7) // 8

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes

    @property
    def bits_per_pixel(self) -> float:
        pixels = self.image_shape[0] * self.image_shape[1]
        return 8.0 * self.compressed_bytes / pixels if pixels else 0.0


class STransformCodec:
    """Compressive lossless codec: integer S-transform + zig-zag + Rice.

    ``engine`` selects the entropy-coding implementation tier: ``"fast"``
    (the vectorised :mod:`repro.coding.fastbits`-based coder), ``"scalar"``
    (the bit-by-bit reference) or ``"turbo"`` (bit-window decoding; encoding
    reuses the fast encoders).  All tiers produce byte-identical streams;
    any engine decodes any other's output.  ``None`` (the default) resolves
    through :func:`repro.coding.spec.default_engine`.
    """

    def __init__(
        self, scales: int = 4, bit_depth: int = 12, engine: Optional[str] = None
    ) -> None:
        # Imported here, not at module top: the registry module imports this
        # one while it initialises (see spec._register_builtin_families).
        from .spec import ENGINE_NAMES, default_engine

        if scales < 1:
            raise ValueError("scales must be >= 1")
        if not 1 <= bit_depth <= 16:
            raise ValueError("bit_depth must be in [1, 16]")
        if engine is None:
            engine = default_engine()
        if engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {engine!r} (expected one of {ENGINE_NAMES})"
            )
        self.scales = scales
        self.bit_depth = bit_depth
        self.engine = engine

    # -- stage API (used by the batched pipeline for per-stage timing) ------------------
    def forward_transform(self, image: np.ndarray) -> STransformPyramid:
        """Validate the image and run the multi-scale forward S-transform."""
        image = np.asarray(image)
        if image.ndim != 2:
            raise ValueError("the codec compresses 2-D images")
        if image.min() < 0 or image.max() >= (1 << self.bit_depth):
            raise ValueError(
                f"image values outside the declared {self.bit_depth}-bit range"
            )
        return s_transform_forward_2d(image, self.scales)

    def encode_pyramid(
        self, pyramid: STransformPyramid, image_shape: Tuple[int, int]
    ) -> CompressedSImage:
        """Entropy code every subband of a transformed pyramid."""
        compressed = CompressedSImage(
            scales=self.scales,
            image_shape=(int(image_shape[0]), int(image_shape[1])),
            bit_depth=self.bit_depth,
        )
        self._add_band(compressed, "HH", self.scales, pyramid.approximation)
        for scale_index, bands in enumerate(pyramid.details, start=1):
            for kind, band in bands.items():
                self._add_band(compressed, kind, scale_index, band)
        return compressed

    def decode_pyramid(self, compressed: CompressedSImage) -> STransformPyramid:
        """Entropy decode a stream back into a subband pyramid."""
        if compressed.scales != self.scales:
            raise ValueError(
                f"stream has {compressed.scales} scales, codec configured for {self.scales}"
            )
        approximation = self._get_band(compressed, "HH", self.scales)
        details: List[Dict[str, np.ndarray]] = []
        for scale in range(1, self.scales + 1):
            details.append(
                {kind: self._get_band(compressed, kind, scale) for kind in ("HG", "GH", "GG")}
            )
        return STransformPyramid(approximation=approximation, details=details)

    def inverse_transform(self, pyramid: STransformPyramid) -> np.ndarray:
        """Run the inverse S-transform."""
        return s_transform_inverse_2d(pyramid)

    # -- whole-image API ----------------------------------------------------------------
    def encode(self, image: np.ndarray) -> CompressedSImage:
        """Compress an integer image losslessly."""
        image = np.asarray(image)
        pyramid = self.forward_transform(image)
        return self.encode_pyramid(pyramid, image.shape)

    def decode(self, compressed: CompressedSImage) -> np.ndarray:
        """Reconstruct the original image bit for bit."""
        return self.inverse_transform(self.decode_pyramid(compressed))

    def decode_preview(self, compressed: CompressedSImage, at_scale: int) -> np.ndarray:
        """Decode the scale-``at_scale`` approximation image.

        Only the approximation and the detail subbands coarser than
        ``at_scale`` are entropy decoded, so a prefix-decoded stream holding
        just those chunks suffices.  The S-transform averages (rather than
        sums) on analysis, so the preview stays in pixel range.
        ``at_scale=0`` equals :meth:`decode` bit for bit.
        """
        if compressed.scales != self.scales:
            raise ValueError(
                f"stream has {compressed.scales} scales, codec configured for {self.scales}"
            )
        if not 0 <= at_scale <= self.scales:
            raise ValueError(
                f"at_scale must be within [0, {self.scales}], got {at_scale}"
            )
        data = self._get_band(compressed, "HH", self.scales)
        for scale in range(self.scales, at_scale, -1):
            bands = {
                kind: self._get_band(compressed, kind, scale)
                for kind in ("HG", "GH", "GG")
            }
            row_lo = s_transform_inverse_1d(data.T, bands["HG"].T).T
            row_hi = s_transform_inverse_1d(bands["GH"].T, bands["GG"].T).T
            data = s_transform_inverse_1d(row_lo, row_hi)
        return data

    def decode_roi(self, compressed: CompressedSImage, y0: int, y1: int) -> np.ndarray:
        """Decode just the output row band ``[y0, y1)``.

        Bit-exact to ``decode(compressed)[y0:y1]``; every subband still
        entropy decodes, but the inverse transform runs windowed
        (:func:`s_transform_inverse_roi`).
        """
        return s_transform_inverse_roi(self.decode_pyramid(compressed), y0, y1)

    def roundtrip(self, image: np.ndarray) -> Tuple[np.ndarray, CompressedSImage]:
        compressed = self.encode(image)
        return self.decode(compressed), compressed

    # -- helpers ------------------------------------------------------------------------
    def _add_band(
        self, compressed: CompressedSImage, kind: str, scale: int, band: np.ndarray
    ) -> None:
        flat = np.asarray(band, dtype=np.int64).ravel()
        symbols = zigzag_encode(flat)
        # The turbo tier is decode-side: its encoder is the fast one.
        encode = rice_encode_scalar if self.engine == "scalar" else rice_encode
        compressed.chunks[(kind, scale)] = encode(symbols)
        compressed.shapes[(kind, scale)] = (int(band.shape[0]), int(band.shape[1]))

    def _get_band(
        self, compressed: CompressedSImage, kind: str, scale: int
    ) -> np.ndarray:
        try:
            payload = compressed.chunks[(kind, scale)]
            shape = compressed.shapes[(kind, scale)]
        except KeyError as exc:
            raise KeyError(f"compressed stream has no subband {kind}@{scale}") from exc
        if self.engine == "turbo":
            symbols = rice_decode_array_turbo(payload)
        elif self.engine == "fast":
            symbols = rice_decode_array(payload)
        else:
            symbols = np.asarray(rice_decode_scalar(payload), dtype=np.int64)
        return zigzag_decode(symbols).reshape(shape)
