"""First-class codec configuration: :class:`CodecSpec` and the codec registry.

Every layer of the reproduction used to describe "how a frame is
compressed" with its own pile of stringly-typed keywords (``codec=``,
``engine=``, ``transform=``, ``options=``) validated against its own copy
of the legal names.  This module replaces all of that with two pieces:

* a **codec registry** — one :class:`CodecFamily` entry per codec the
  pipeline and the archive container support, carrying the family's wire
  id, stream type, constructor and legal options.  Registry lookups raise
  :class:`UnknownCodecError` (a :class:`ValueError`), so every layer
  rejects a bad codec name with the same message;
* :class:`CodecSpec` — a frozen, validated, serializable description of a
  *complete* compression configuration: codec family, entropy-coding
  engine, transform back end and engine, decomposition depth, bit depth,
  filter bank and RLE policy, plus open extension options.

A spec is the unit of configuration everywhere downstream: the stage
pipeline (:mod:`repro.coding.pipeline`) compresses with it, the parallel
executor (:mod:`repro.coding.executor`) ships it to worker processes, the
archive container (:mod:`repro.archive`) stores and reconstructs it per
frame, and the accelerator model builds itself from it
(:meth:`repro.arch.accelerator.DwtAccelerator.from_spec`).  The old
keyword signatures keep working through :meth:`CodecSpec.from_kwargs`,
the compatibility shim every public entry point funnels through.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..filters.qmf import BiorthogonalBank

__all__ = [
    "ENGINE_NAMES",
    "TRANSFORM_ENGINE_NAMES",
    "TRANSFORM_NAMES",
    "default_engine",
    "UnknownCodecError",
    "CodecFamily",
    "register_codec",
    "get_family",
    "family_for_stream",
    "codec_names",
    "codec_wire_ids",
    "reject_spec_overrides",
    "CodecSpec",
]

#: Entropy-coding engine tiers every codec ships: ``"fast"`` (vectorised
#: NumPy), ``"scalar"`` (bit-by-bit reference) and ``"turbo"`` (prefix-LUT /
#: bit-window decode; encoding reuses the fast encoders).  All tiers are
#: byte-identical on the wire.
ENGINE_NAMES = ("fast", "scalar", "turbo")

#: Accelerator engine implementations (:data:`repro.arch.accelerator.ENGINES`);
#: the architecture model has no turbo tier, so ``transform_engine`` is
#: validated against this narrower set.
TRANSFORM_ENGINE_NAMES = ("fast", "scalar")

#: Transform-stage back ends of the pipeline.
TRANSFORM_NAMES = ("software", "accelerator")


def default_engine() -> str:
    """The process-wide default entropy-coding engine.

    ``"fast"`` unless the ``REPRO_ENGINE`` environment variable forces a
    tier — the seam the CI engine matrix uses to run the whole coding and
    archive suites under each tier without touching any call site.
    """
    engine = os.environ.get("REPRO_ENGINE", "").strip()
    if not engine:
        return "fast"
    _check_engine("REPRO_ENGINE engine", engine)
    return engine


class UnknownCodecError(ValueError):
    """A codec name that no registered :class:`CodecFamily` claims."""


@dataclass(frozen=True)
class CodecFamily:
    """Registry entry for one codec family.

    ``wire_id`` is the identifier stored in archive frame payloads and
    index entries (:mod:`repro.archive.format` derives its id tables from
    the registry, so the registry is the single source of truth).
    ``option_names`` are the constructor keywords the family accepts beyond
    ``scales``/``engine``; anything else in a spec is rejected up front
    instead of exploding inside the constructor.
    """

    name: str
    wire_id: int
    stream_type: type
    factory: Callable[..., object]
    option_names: Tuple[str, ...]
    uses_bank: bool
    supports_accelerator: bool
    description: str = ""


_REGISTRY: Dict[str, CodecFamily] = {}


def register_codec(family: CodecFamily) -> CodecFamily:
    """Register a codec family (name and wire id must both be unused)."""
    if family.name in _REGISTRY:
        raise ValueError(f"codec {family.name!r} is already registered")
    if any(f.wire_id == family.wire_id for f in _REGISTRY.values()):
        raise ValueError(f"wire id {family.wire_id} is already registered")
    _REGISTRY[family.name] = family
    return family


def get_family(codec: str) -> CodecFamily:
    """Look a codec family up by name; raises :class:`UnknownCodecError`."""
    try:
        return _REGISTRY[codec]
    except KeyError:
        raise UnknownCodecError(
            f"unknown codec {codec!r} (expected one of {codec_names()})"
        ) from None


def family_for_stream(stream: object) -> CodecFamily:
    """The family whose stream type produced ``stream``."""
    for family in _REGISTRY.values():
        if isinstance(stream, family.stream_type):
            return family
    raise TypeError(f"not a compressed stream: {type(stream).__name__}")


def codec_names() -> Tuple[str, ...]:
    """Registered codec names, in registration order."""
    return tuple(_REGISTRY)


def codec_wire_ids() -> Dict[str, int]:
    """Mapping of codec name to archive wire id (fresh dict each call)."""
    return {name: family.wire_id for name, family in _REGISTRY.items()}


def reject_spec_overrides(codec_options: Mapping[str, Any], **named: Any) -> None:
    """Raise if any legacy keyword was passed next to an explicit spec.

    Entry points that accept both a ready-made :class:`CodecSpec` and the
    legacy keyword style give the keywords ``None`` defaults and call this
    when a spec was supplied: any keyword that is not ``None`` (plus any
    ``**codec_options``) is rejected loudly instead of being silently
    ignored in favour of the spec.
    """
    explicit = {name: value for name, value in named.items() if value is not None}
    explicit.update(codec_options)
    if explicit:
        raise ValueError(
            "pass configuration either as a CodecSpec or as keywords, "
            f"not both (got spec= and {sorted(explicit)})"
        )


# ---------------------------------------------------------------------------
# Built-in families
# ---------------------------------------------------------------------------

def _register_builtin_families() -> None:
    # Imported lazily so ``repro.coding.spec`` can be imported while the
    # package is still initialising (the codec modules import nothing back).
    from .codec import CompressedImage, LosslessWaveletCodec
    from .s_transform import CompressedSImage, STransformCodec

    register_codec(
        CodecFamily(
            name="s-transform",
            wire_id=1,
            stream_type=CompressedSImage,
            factory=STransformCodec,
            option_names=("bit_depth",),
            uses_bank=False,
            supports_accelerator=False,
            description="compressive reversible-integer S-transform codec",
        )
    )
    register_codec(
        CodecFamily(
            name="coefficient",
            wire_id=2,
            stream_type=CompressedImage,
            factory=LosslessWaveletCodec,
            option_names=("bit_depth", "bank", "use_rle", "plan"),
            uses_bank=True,
            supports_accelerator=True,
            description="coefficient-exact fixed-point DWT codec",
        )
    )


_register_builtin_families()


# ---------------------------------------------------------------------------
# CodecSpec
# ---------------------------------------------------------------------------

def _check_engine(
    label: str, engine: str, allowed: Tuple[str, ...] = ENGINE_NAMES
) -> None:
    if engine not in allowed:
        raise ValueError(
            f"unknown {label} {engine!r} (expected one of {allowed})"
        )


@dataclass(frozen=True, eq=False)
class CodecSpec:
    """Frozen, validated description of one full compression configuration.

    Parameters
    ----------
    codec:
        Registered codec family name (see :func:`codec_names`).
    scales:
        Requested decomposition depth (clamped per frame by the pipeline to
        what each frame's geometry supports).
    engine:
        Entropy-coding engine tier, ``"fast"``, ``"scalar"`` or ``"turbo"``
        (all byte-identical on the wire).  ``None`` (the default) resolves
        through :func:`default_engine`, i.e. ``"fast"`` unless the
        ``REPRO_ENGINE`` environment variable forces a tier.
    transform:
        Transform back end, ``"software"`` or ``"accelerator"`` (the latter
        only for families with ``supports_accelerator``).
    transform_engine:
        Accelerator engine when ``transform="accelerator"`` — ``"fast"`` or
        ``"scalar"`` only (:data:`TRANSFORM_ENGINE_NAMES`); the architecture
        model has no turbo tier.
    bit_depth:
        Input image bit depth.
    bank:
        Filter bank — a Table I catalog name or a
        :class:`~repro.filters.qmf.BiorthogonalBank` instance — for
        families that use one; normalised to ``None`` otherwise.
    use_rle:
        Zero run-length coding policy for families that support it;
        normalised to ``None`` otherwise.
    extras:
        Any further constructor options (e.g. a word-length ``plan``
        override), stored as a sorted tuple of ``(name, value)`` pairs.

    Instances are immutable, comparable and hashable; a ``bank`` given as
    a :class:`BiorthogonalBank` *instance* takes part in equality by its
    catalog name (bank objects carry coefficient arrays, which have no
    scalar equality — the instance itself still flows into the codec
    untouched).  :meth:`to_dict` / :meth:`from_dict` (and the JSON twins)
    round-trip every serialisable configuration, which is how the archive
    container and the parallel executor move specs across file and process
    boundaries.
    """

    codec: str = "s-transform"
    scales: int = 4
    engine: Optional[str] = None
    transform: str = "software"
    transform_engine: str = "fast"
    bit_depth: int = 12
    bank: Optional[Any] = None
    use_rle: Optional[bool] = None
    extras: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        family = get_family(self.codec)
        if self.scales < 1:
            raise ValueError("scales must be >= 1")
        if not 1 <= self.bit_depth <= 16:
            raise ValueError("bit_depth must be in [1, 16]")
        if self.engine is None:
            object.__setattr__(self, "engine", default_engine())
        _check_engine("engine", self.engine)
        _check_engine("transform_engine", self.transform_engine, TRANSFORM_ENGINE_NAMES)
        if self.transform not in TRANSFORM_NAMES:
            raise ValueError(
                f"unknown transform {self.transform!r} "
                f"(expected one of {TRANSFORM_NAMES})"
            )
        if self.transform == "accelerator" and not family.supports_accelerator:
            raise ValueError(
                "transform='accelerator' is only available for the "
                "'coefficient' codec: the architecture model computes the "
                f"filter-bank DWT, not the {self.codec!r} codec's transform"
            )
        # Normalise family-irrelevant fields so equal configurations compare
        # (and serialise) equal regardless of how they were spelled.
        if family.uses_bank:
            object.__setattr__(self, "bank", self.bank if self.bank is not None else "F2")
            object.__setattr__(
                self, "use_rle", True if self.use_rle is None else bool(self.use_rle)
            )
        else:
            if self.bank is not None:
                raise ValueError(f"codec {self.codec!r} does not take a filter bank")
            if self.use_rle is not None:
                raise ValueError(f"codec {self.codec!r} does not take use_rle")
        if not isinstance(self.extras, tuple):
            object.__setattr__(self, "extras", tuple(sorted(dict(self.extras).items())))
        for name, _ in self.extras:
            if name in ("bit_depth", "bank", "use_rle"):
                raise ValueError(f"option {name!r} is a CodecSpec field, not an extra")
            if name not in family.option_names:
                raise ValueError(
                    f"codec {self.codec!r} does not take option {name!r} "
                    f"(accepted: {family.option_names})"
                )

    # -- equality / hashing -------------------------------------------------------------
    def _compare_key(self) -> Tuple:
        return (
            self.codec,
            self.scales,
            self.engine,
            self.transform,
            self.transform_engine,
            self.bit_depth,
            self.bank_name,
            self.use_rle,
            self.extras,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CodecSpec):
            return NotImplemented
        return self._compare_key() == other._compare_key()

    def __hash__(self) -> int:
        # Extras values may be arbitrary objects (e.g. a word-length plan);
        # hashing only their names keeps equal specs hashing equal without
        # demanding hashable option values.
        key = self._compare_key()[:-1] + (tuple(name for name, _ in self.extras),)
        return hash(key)

    # -- derived views ------------------------------------------------------------------
    @property
    def family(self) -> CodecFamily:
        return get_family(self.codec)

    @property
    def bank_name(self) -> str:
        """Catalog name of the configured filter bank ("" when bank-less)."""
        if self.bank is None:
            return ""
        if isinstance(self.bank, BiorthogonalBank):
            return self.bank.name
        return str(self.bank)

    def codec_kwargs(self) -> Dict[str, Any]:
        """Constructor keywords (beyond ``scales``/``engine``) for the codec."""
        kwargs: Dict[str, Any] = {"bit_depth": self.bit_depth}
        if self.family.uses_bank:
            kwargs["bank"] = self.bank
            kwargs["use_rle"] = self.use_rle
        kwargs.update(dict(self.extras))
        return kwargs

    # -- construction helpers -----------------------------------------------------------
    def replace(self, **overrides: Any) -> "CodecSpec":
        """A new spec with ``overrides`` applied (re-validated)."""
        return replace(self, **overrides)

    def with_scales(self, scales: int) -> "CodecSpec":
        """The same configuration at a different decomposition depth."""
        return self if scales == self.scales else self.replace(scales=scales)

    def replace_options(self, **codec_options: Any) -> "CodecSpec":
        """Apply legacy codec-option keywords on top of this spec.

        Routes the spec-field options (``bit_depth``/``bank``/``use_rle``)
        to their fields and everything else into ``extras`` — the same
        split :meth:`from_kwargs` performs, kept in one place so inherit-
        and-override paths (e.g. ``ArchiveWriter.append``) cannot drift.
        """
        known = {
            name: codec_options.pop(name)
            for name in ("bit_depth", "bank", "use_rle")
            if name in codec_options
        }
        if codec_options:
            merged = dict(self.extras)
            merged.update(codec_options)
            known["extras"] = tuple(sorted(merged.items()))
        return self.replace(**known) if known else self

    def build_codec(self, scales: Optional[int] = None):
        """Instantiate the configured codec (at ``scales`` if given)."""
        return self.family.factory(
            scales=self.scales if scales is None else scales,
            engine=self.engine,
            **self.codec_kwargs(),
        )

    @classmethod
    def from_kwargs(
        cls,
        codec: str = "s-transform",
        scales: int = 4,
        engine: Optional[str] = None,
        transform: str = "software",
        transform_engine: str = "fast",
        **codec_options: Any,
    ) -> "CodecSpec":
        """Compatibility shim: build a spec from the legacy keyword style.

        This is the exact signature :func:`~repro.coding.pipeline.compress_frames`
        and :meth:`~repro.archive.writer.ArchiveWriter.create` used to take,
        so existing call sites keep working unchanged.
        """
        options = dict(codec_options)
        known = {
            name: options.pop(name)
            for name in ("bit_depth", "bank", "use_rle")
            if name in options
        }
        return cls(
            codec=codec,
            scales=scales,
            engine=engine,
            transform=transform,
            transform_engine=transform_engine,
            bit_depth=known.get("bit_depth", 12),
            bank=known.get("bank"),
            use_rle=known.get("use_rle"),
            extras=tuple(sorted(options.items())),
        )

    @classmethod
    def for_stream(cls, stream: object, **overrides: Any) -> "CodecSpec":
        """The spec that (re)produces ``stream``'s configuration."""
        family = family_for_stream(stream)
        fields: Dict[str, Any] = {
            "codec": family.name,
            "scales": int(stream.scales),
            "bit_depth": int(stream.bit_depth),
        }
        if family.uses_bank:
            fields["bank"] = stream.bank_name
            fields["use_rle"] = any(chunk.use_rle for chunk in stream.chunks)
        fields.update(overrides)
        return cls(**fields)

    # -- serialisation ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready when extras and bank are plain)."""
        return {
            "codec": self.codec,
            "scales": self.scales,
            "engine": self.engine,
            "transform": self.transform,
            "transform_engine": self.transform_engine,
            "bit_depth": self.bit_depth,
            "bank": self.bank_name or None,
            "use_rle": self.use_rle,
            "options": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CodecSpec":
        data = dict(data)
        options = data.pop("options", {}) or {}
        return cls(
            codec=data.get("codec", "s-transform"),
            scales=data.get("scales", 4),
            engine=data.get("engine", "fast"),
            transform=data.get("transform", "software"),
            transform_engine=data.get("transform_engine", "fast"),
            bit_depth=data.get("bit_depth", 12),
            bank=data.get("bank"),
            use_rle=data.get("use_rle"),
            extras=tuple(sorted(options.items())),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CodecSpec":
        return cls.from_dict(json.loads(text))

    # -- display ------------------------------------------------------------------------
    def describe(self) -> str:
        """Compact one-line rendering for CLIs and logs."""
        parts = [self.codec]
        if self.family.uses_bank:
            parts.append(f"bank={self.bank_name}")
        parts.append(f"scales={self.scales}")
        parts.append(f"bits={self.bit_depth}")
        if self.use_rle is not None:
            parts.append("rle" if self.use_rle else "no-rle")
        parts.append(f"engine={self.engine}")
        if self.transform == "accelerator":
            parts.append(f"transform=accelerator({self.transform_engine})")
        else:
            parts.append("transform=software")
        for name, value in self.extras:
            parts.append(f"{name}={value!r}")
        return " ".join(parts)
