"""Bit-level I/O used by the entropy coders.

:class:`BitWriter` packs bits MSB-first into a ``bytes`` object;
:class:`BitReader` reads them back.  Both also provide fixed-width unsigned
integer helpers, which is all the Rice and Huffman coders need.
"""

from __future__ import annotations

from typing import Iterable, List

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates bits (MSB first within each byte) into a byte string."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._current = 0
        self._filled = 0
        self.bits_written = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        self._current = (self._current << 1) | bit
        self._filled += 1
        self.bits_written += 1
        if self._filled == 8:
            self._bytes.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, bits: Iterable[int]) -> None:
        """Append several bits."""
        for bit in bits:
            self.write_bit(bit)

    def write_run(self, bit: int, count: int) -> None:
        """Append ``count`` copies of ``bit``, filling whole bytes in bulk."""
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        if count < 0:
            raise ValueError("count must be non-negative")
        while self._filled and count:
            self.write_bit(bit)
            count -= 1
        whole_bytes, rest = divmod(count, 8)
        if whole_bytes:
            self._bytes.extend((0xFF if bit else 0x00,) * whole_bytes)
            self.bits_written += 8 * whole_bytes
        for _ in range(rest):
            self.write_bit(bit)

    def write_unary(self, value: int) -> None:
        """Write ``value`` as a unary code: ``value`` ones followed by a zero."""
        if value < 0:
            raise ValueError("unary codes encode non-negative integers")
        if value:
            self.write_run(1, value)
        self.write_bit(0)

    def write_uint(self, value: int, width: int) -> None:
        """Write ``value`` as a ``width``-bit unsigned integer (MSB first)."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def getvalue(self) -> bytes:
        """Finish the stream (zero-padding the last byte) and return it."""
        data = bytearray(self._bytes)
        if self._filled:
            data.append(self._current << (8 - self._filled))
        return bytes(data)

    def __len__(self) -> int:
        """Number of complete bytes the padded stream will occupy."""
        return len(self._bytes) + (1 if self._filled else 0)


class BitReader:
    """Reads bits (MSB first within each byte) from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._position = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        return 8 * len(self._data) - self._position

    def read_bit(self) -> int:
        """Read one bit; raises ``EOFError`` past the end of the stream."""
        if self._position >= 8 * len(self._data):
            raise EOFError("bitstream exhausted")
        byte = self._data[self._position // 8]
        bit = (byte >> (7 - self._position % 8)) & 1
        self._position += 1
        return bit

    def read_bits(self, count: int) -> List[int]:
        """Read ``count`` bits as a list."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.read_bit() for _ in range(count)]

    def read_unary(self) -> int:
        """Read a unary code (count of ones before the terminating zero)."""
        value = 0
        while self.read_bit() == 1:
            value += 1
        return value

    def read_uint(self, width: int) -> int:
        """Read a ``width``-bit unsigned integer (MSB first)."""
        if width < 0:
            raise ValueError("width must be non-negative")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value
