"""Canonical Huffman coding of bounded symbol alphabets.

Used by the codec for the *category* stream (the bucketed magnitudes of the
wavelet coefficients, JPEG-style), where the alphabet is small (< 64
symbols) and a static canonical code transmitted as a table of code lengths
is both compact and fast to rebuild.

The code construction is deliberately self-contained (no heapq tricks beyond
the standard algorithm) and exposes the intermediate artefacts — frequency
table, code lengths, canonical codes — so tests can check the classical
Huffman invariants (Kraft equality, optimality against a brute-force check
on small alphabets).

Like the Rice coder, the block coder has two wire-identical implementations:

* :func:`huffman_encode` / :func:`huffman_decode` — vectorised: encoding
  gathers per-symbol (code, length) from lookup tables and expands them in
  one :func:`~repro.coding.fastbits.pack_uint_fields` call; decoding peeks
  the maximum code length at every bit position, classifies each peek against
  the canonical left-justified code boundaries, and follows the resulting
  code-length successor map with :func:`~repro.coding.fastbits.orbit`.
* :func:`huffman_encode_scalar` / :func:`huffman_decode_scalar` — the
  original symbol-by-symbol reference implementations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .bitstream import BitReader, BitWriter
from .fastbits import (
    bit_windows64,
    orbit,
    pack_bits,
    pack_uint_fields,
    read_uint,
    read_uints,
    unpack_bits,
)

__all__ = [
    "HuffmanCode",
    "build_code_lengths",
    "canonical_codes",
    "huffman_encode",
    "huffman_decode",
    "huffman_decode_turbo",
    "huffman_encode_scalar",
    "huffman_decode_scalar",
]


def _as_symbol_array(symbols) -> np.ndarray:
    if isinstance(symbols, np.ndarray):
        return symbols.astype(np.int64, copy=False).ravel()
    if isinstance(symbols, (list, tuple)):
        return np.asarray(symbols, dtype=np.int64)
    return np.asarray(list(symbols), dtype=np.int64)


def build_code_lengths(frequencies: Dict[int, int]) -> Dict[int, int]:
    """Huffman code length of every symbol with non-zero frequency.

    A single-symbol alphabet gets a 1-bit code (degenerate but decodable).
    """
    items = [(freq, symbol) for symbol, freq in frequencies.items() if freq > 0]
    if not items:
        return {}
    if len(items) == 1:
        return {items[0][1]: 1}
    # Standard Huffman construction over a heap of (weight, tiebreak, node).
    heap: List[Tuple[int, int, Tuple]] = []
    for counter, (freq, symbol) in enumerate(sorted(items)):
        heapq.heappush(heap, (freq, counter, ("leaf", symbol)))
    counter = len(items)
    while len(heap) > 1:
        freq_a, _, node_a = heapq.heappop(heap)
        freq_b, _, node_b = heapq.heappop(heap)
        heapq.heappush(heap, (freq_a + freq_b, counter, ("node", node_a, node_b)))
        counter += 1
    _, _, root = heap[0]

    lengths: Dict[int, int] = {}

    def walk(node: Tuple, depth: int) -> None:
        if node[0] == "leaf":
            lengths[node[1]] = max(1, depth)
            return
        walk(node[1], depth + 1)
        walk(node[2], depth + 1)

    walk(root, 0)
    return lengths


def canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Canonical ``{symbol: (code, length)}`` assignment from code lengths.

    Symbols are ordered by (length, symbol value); codes are assigned in
    increasing numeric order, which is the canonical-Huffman convention that
    lets the decoder rebuild the code from the lengths alone.
    """
    ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for symbol, length in ordered:
        code <<= (length - previous_length)
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical Huffman code over a bounded non-negative alphabet."""

    lengths: Dict[int, int]

    @classmethod
    def from_symbols(cls, symbols: Iterable[int]) -> "HuffmanCode":
        """Build the optimal code for the empirical distribution of ``symbols``."""
        arr = _as_symbol_array(symbols)
        if arr.size and int(arr.min()) < 0:
            raise ValueError("Huffman symbols must be non-negative")
        uniques, counts = np.unique(arr, return_counts=True)
        frequencies = {int(s): int(c) for s, c in zip(uniques, counts)}
        return cls(lengths=build_code_lengths(frequencies))

    @property
    def codes(self) -> Dict[int, Tuple[int, int]]:
        return canonical_codes(self.lengths)

    @property
    def max_symbol(self) -> int:
        return max(self.lengths) if self.lengths else 0

    def kraft_sum(self) -> float:
        """Kraft sum of the code (== 1 for a complete code, <= 1 always)."""
        return sum(2.0 ** -length for length in self.lengths.values())

    def expected_length(self, frequencies: Dict[int, int]) -> float:
        """Average code length under ``frequencies`` (bits/symbol)."""
        total = sum(frequencies.values())
        if total == 0:
            return 0.0
        return sum(
            frequencies.get(symbol, 0) * length for symbol, length in self.lengths.items()
        ) / total

    def lookup_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense ``(code, length)`` arrays indexed by symbol (0 = no code)."""
        alphabet = self.max_symbol + 1 if self.lengths else 0
        code_table = np.zeros(alphabet, dtype=np.int64)
        length_table = np.zeros(alphabet, dtype=np.int64)
        for symbol, (code, length) in self.codes.items():
            code_table[symbol] = code
            length_table[symbol] = length
        return code_table, length_table

    # -- serialisation of the code itself ------------------------------------------------
    def write_table(self, writer: BitWriter) -> None:
        """Write the code as a dense table of 5-bit lengths (0 = absent)."""
        alphabet = self.max_symbol + 1 if self.lengths else 0
        writer.write_uint(alphabet, 16)
        for symbol in range(alphabet):
            writer.write_uint(self.lengths.get(symbol, 0), 5)

    def table_bits(self) -> np.ndarray:
        """The :meth:`write_table` stream as a bit array (vectorised path)."""
        alphabet = self.max_symbol + 1 if self.lengths else 0
        _, length_table = self.lookup_tables()
        values = np.concatenate([[alphabet], length_table])
        widths = np.concatenate([[16], np.full(alphabet, 5, dtype=np.int64)])
        return pack_uint_fields(values, widths)

    @classmethod
    def read_table(cls, reader: BitReader) -> "HuffmanCode":
        alphabet = reader.read_uint(16)
        lengths: Dict[int, int] = {}
        for symbol in range(alphabet):
            length = reader.read_uint(5)
            if length:
                lengths[symbol] = length
        return cls(lengths=lengths)


# ---------------------------------------------------------------------------
# Vectorised block coder
# ---------------------------------------------------------------------------

def huffman_encode(symbols, code: HuffmanCode = None) -> bytes:
    """Encode ``symbols`` with a (possibly provided) canonical Huffman code.

    The code table and the symbol count are embedded so the stream is
    self-contained.  Byte-identical to :func:`huffman_encode_scalar`.
    """
    arr = _as_symbol_array(symbols)
    if arr.size and int(arr.min()) < 0:
        raise ValueError("Huffman symbols must be non-negative")
    if code is None:
        code = HuffmanCode.from_symbols(arr)
    code_table, length_table = code.lookup_tables()
    if arr.size:
        if int(arr.max()) >= code_table.size:
            raise ValueError(
                f"symbol {int(arr[np.argmax(arr)])} is not part of the Huffman code"
            )
        lengths = length_table[arr]
        if not lengths.all():
            bad = int(arr[np.flatnonzero(lengths == 0)[0]])
            raise ValueError(f"symbol {bad} is not part of the Huffman code")
        payload = pack_uint_fields(code_table[arr], lengths)
    else:
        payload = np.zeros(0, dtype=np.uint8)
    header = np.concatenate([code.table_bits(), pack_uint_fields([arr.size], [32])])
    return pack_bits(np.concatenate([header, payload]))


def huffman_decode(data: bytes) -> List[int]:
    """Inverse of :func:`huffman_encode` (table-driven, vectorised).

    The decoder peeks ``max_length`` bits at *every* bit position, classifies
    each peek against the canonical code boundaries (left-justified canonical
    codes are strictly increasing, so one ``searchsorted`` finds the matching
    code), and resolves the sequential symbol walk with :func:`orbit`.
    """
    bits = unpack_bits(data)
    alphabet = read_uint(bits, 0, 16)
    length_table = read_uints(bits, 16, alphabet, 5)
    offset = 16 + 5 * alphabet
    count = read_uint(bits, offset, 32)
    offset += 32
    if count == 0:
        return []
    lengths = {int(s): int(l) for s, l in enumerate(length_table) if l}
    if not lengths:
        raise ValueError("corrupt Huffman stream (no code table)")
    codes = canonical_codes(lengths)
    ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    symbols_sorted = np.asarray([s for s, _ in ordered], dtype=np.int64)
    lengths_sorted = np.asarray([l for _, l in ordered], dtype=np.int64)
    max_length = int(lengths_sorted[-1])
    # Left-justified canonical codes: strictly increasing, first one is 0.
    left_justified = np.asarray(
        [codes[s][0] << (max_length - l) for s, l in ordered], dtype=np.int64
    )
    nbits = bits.size
    usable = nbits - offset
    if usable <= 0:
        raise EOFError("bitstream exhausted")
    # Peek max_length bits at every position in the payload region.
    padded = np.concatenate([bits[offset:], np.zeros(max_length, dtype=np.uint8)])
    peek = np.zeros(usable, dtype=np.int64)
    for j in range(max_length):
        peek = (peek << 1) | padded[j : j + usable]
    entry = np.searchsorted(left_justified, peek, side="right") - 1
    step = lengths_sorted[entry]
    valid = (peek - left_justified[entry]) < (
        np.int64(1) << (max_length - step)
    )
    successor = np.minimum(np.arange(usable, dtype=np.int64) + step, usable - 1)
    positions = orbit(successor.astype(np.int32), 0, count)
    if not valid[positions].all():
        raise ValueError("corrupt Huffman stream (no code within 32 bits)")
    steps = step[positions]
    if count > 1 and np.any(np.diff(positions) != steps[:-1]):
        raise EOFError("bitstream exhausted")
    if int(positions[-1] + steps[-1]) > usable:
        raise EOFError("bitstream exhausted")
    return symbols_sorted[entry[positions]].tolist()


#: Widest code the turbo prefix table covers (2^L LUT entries); canonical
#: codes longer than this fall back to :func:`huffman_decode`.  16 bits is
#: far beyond what the < 64-symbol category alphabets ever produce.
_TURBO_MAX_CODE_LENGTH = 16


def huffman_decode_turbo(data) -> List[int]:
    """Inverse of :func:`huffman_encode` (prefix-LUT turbo tier).

    Same stream contract as :func:`huffman_decode`, decoded roughly 2-3x
    faster: instead of assembling a ``max_length``-bit peek with one shift/or
    pass per bit and classifying it with ``searchsorted`` over the code
    boundaries, the turbo tier reads a 64-bit window at every payload bit
    position (:func:`~repro.coding.fastbits.bit_windows64`) and resolves it
    through a dense ``2^max_length``-entry prefix table built once per block
    (symbol, code length and validity per possible peek — the classification
    collapses to three gathers).  The sequential walk is still
    :func:`~repro.coding.fastbits.orbit`; accepts ``bytes`` or
    ``memoryview`` without copying the payload.
    """
    raw = np.frombuffer(data, dtype=np.uint8)
    nbytes = raw.size
    if nbytes < 2:
        raise EOFError("bitstream exhausted")
    alphabet = (int(raw[0]) << 8) | int(raw[1])
    header_bits = 16 + 5 * alphabet + 32
    header_bytes = (header_bits + 7) // 8
    if header_bytes > nbytes:
        raise EOFError("bitstream exhausted")
    head = np.unpackbits(raw[:header_bytes])
    length_table = read_uints(head, 16, alphabet, 5)
    offset = 16 + 5 * alphabet
    count = read_uint(head, offset, 32)
    offset += 32
    if count == 0:
        return []
    lengths = {int(s): int(l) for s, l in enumerate(length_table) if l}
    if not lengths:
        raise ValueError("corrupt Huffman stream (no code table)")
    ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    max_length = int(ordered[-1][1])
    if max_length > _TURBO_MAX_CODE_LENGTH:
        return huffman_decode(data)
    codes = canonical_codes(lengths)
    symbols_sorted = np.asarray([s for s, _ in ordered], dtype=np.int64)
    lengths_sorted = np.asarray([l for _, l in ordered], dtype=np.int64)
    left_justified = np.asarray(
        [codes[s][0] << (max_length - l) for s, l in ordered], dtype=np.int64
    )
    nbits = 8 * nbytes
    usable = nbits - offset
    if usable <= 0:
        raise EOFError("bitstream exhausted")
    # Dense prefix table over every possible max_length-bit peek.
    values = np.arange(1 << max_length, dtype=np.int64)
    entry_lut = np.searchsorted(left_justified, values, side="right") - 1
    length_lut = lengths_sorted[entry_lut].astype(np.int32)
    valid_lut = (values - left_justified[entry_lut]) < (
        np.int64(1) << (max_length - lengths_sorted[entry_lut])
    )
    symbol_lut = symbols_sorted[entry_lut]
    # Peek max_length bits at every payload position via the 64-bit windows
    # (zero-padded past the stream end, matching the fast decoder's
    # zero-padded peek).  Bit position p = 8 * (p >> 3) + (p & 7) sees
    # window (p >> 3) advanced by phase (p & 7), so eight scalar-shift
    # passes — one per phase, interleaved by the reshape — cover every
    # position without per-element shift amounts.
    windows = bit_windows64(raw)
    mask = np.uint64((1 << max_length) - 1)
    phased = np.empty((nbytes, 8), dtype=np.int32)
    for phase in range(8):
        phased[:, phase] = (
            (windows >> np.uint64(64 - max_length - phase)) & mask
        ).astype(np.int32)
    peek = phased.reshape(-1)[offset : offset + usable]
    # peek is masked into [0, 2^max_length), so the unchecked gather is safe.
    step = length_lut.take(peek, mode="clip")
    successor = np.minimum(
        np.arange(usable, dtype=np.int32) + step, np.int32(usable - 1)
    )
    positions = orbit(successor, 0, count)
    if not valid_lut[peek[positions]].all():
        raise ValueError("corrupt Huffman stream (no code within 32 bits)")
    steps = step[positions].astype(np.int64)
    if count > 1 and np.any(np.diff(positions) != steps[:-1]):
        raise EOFError("bitstream exhausted")
    if int(positions[-1] + steps[-1]) > usable:
        raise EOFError("bitstream exhausted")
    return symbol_lut[peek[positions]].tolist()


# ---------------------------------------------------------------------------
# Scalar reference implementations (bit-by-bit, used for validation)
# ---------------------------------------------------------------------------

def huffman_encode_scalar(symbols: Sequence[int], code: HuffmanCode = None) -> bytes:
    """Symbol-by-symbol reference encoder; byte-identical to :func:`huffman_encode`."""
    arr = _as_symbol_array(symbols)
    if arr.size and int(arr.min()) < 0:
        raise ValueError("Huffman symbols must be non-negative")
    if code is None:
        code = HuffmanCode.from_symbols(arr)
    writer = BitWriter()
    code.write_table(writer)
    writer.write_uint(arr.size, 32)
    codes = code.codes
    for symbol in arr.tolist():
        if symbol not in codes:
            raise ValueError(f"symbol {symbol} is not part of the Huffman code")
        value, length = codes[symbol]
        writer.write_uint(value, length)
    return writer.getvalue()


def huffman_decode_scalar(data: bytes) -> List[int]:
    """Bit-by-bit reference decoder; inverse of both encoders."""
    reader = BitReader(data)
    code = HuffmanCode.read_table(reader)
    count = reader.read_uint(32)
    # Build a (length, code) -> symbol lookup for the canonical code.
    lookup: Dict[Tuple[int, int], int] = {
        (length, value): symbol for symbol, (value, length) in code.codes.items()
    }
    out: List[int] = []
    for _ in range(count):
        value = 0
        length = 0
        while True:
            value = (value << 1) | reader.read_bit()
            length += 1
            if (length, value) in lookup:
                out.append(lookup[(length, value)])
                break
            if length > 32:
                raise ValueError("corrupt Huffman stream (no code within 32 bits)")
    return out
