"""Canonical Huffman coding of bounded symbol alphabets.

Used by the codec for the *category* stream (the bucketed magnitudes of the
wavelet coefficients, JPEG-style), where the alphabet is small (< 64
symbols) and a static canonical code transmitted as a table of code lengths
is both compact and fast to rebuild.

The implementation is deliberately self-contained (no heapq tricks beyond
the standard algorithm) and exposes the intermediate artefacts — frequency
table, code lengths, canonical codes — so tests can check the classical
Huffman invariants (Kraft equality, optimality against a brute-force check
on small alphabets).
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .bitstream import BitReader, BitWriter

__all__ = [
    "HuffmanCode",
    "build_code_lengths",
    "canonical_codes",
    "huffman_encode",
    "huffman_decode",
]


def build_code_lengths(frequencies: Dict[int, int]) -> Dict[int, int]:
    """Huffman code length of every symbol with non-zero frequency.

    A single-symbol alphabet gets a 1-bit code (degenerate but decodable).
    """
    items = [(freq, symbol) for symbol, freq in frequencies.items() if freq > 0]
    if not items:
        return {}
    if len(items) == 1:
        return {items[0][1]: 1}
    # Standard Huffman construction over a heap of (weight, tiebreak, node).
    heap: List[Tuple[int, int, Tuple]] = []
    for counter, (freq, symbol) in enumerate(sorted(items)):
        heapq.heappush(heap, (freq, counter, ("leaf", symbol)))
    counter = len(items)
    while len(heap) > 1:
        freq_a, _, node_a = heapq.heappop(heap)
        freq_b, _, node_b = heapq.heappop(heap)
        heapq.heappush(heap, (freq_a + freq_b, counter, ("node", node_a, node_b)))
        counter += 1
    _, _, root = heap[0]

    lengths: Dict[int, int] = {}

    def walk(node: Tuple, depth: int) -> None:
        if node[0] == "leaf":
            lengths[node[1]] = max(1, depth)
            return
        walk(node[1], depth + 1)
        walk(node[2], depth + 1)

    walk(root, 0)
    return lengths


def canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Canonical ``{symbol: (code, length)}`` assignment from code lengths.

    Symbols are ordered by (length, symbol value); codes are assigned in
    increasing numeric order, which is the canonical-Huffman convention that
    lets the decoder rebuild the code from the lengths alone.
    """
    ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for symbol, length in ordered:
        code <<= (length - previous_length)
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical Huffman code over a bounded non-negative alphabet."""

    lengths: Dict[int, int]

    @classmethod
    def from_symbols(cls, symbols: Iterable[int]) -> "HuffmanCode":
        """Build the optimal code for the empirical distribution of ``symbols``."""
        frequencies = Counter(int(s) for s in symbols)
        if any(s < 0 for s in frequencies):
            raise ValueError("Huffman symbols must be non-negative")
        return cls(lengths=build_code_lengths(frequencies))

    @property
    def codes(self) -> Dict[int, Tuple[int, int]]:
        return canonical_codes(self.lengths)

    @property
    def max_symbol(self) -> int:
        return max(self.lengths) if self.lengths else 0

    def kraft_sum(self) -> float:
        """Kraft sum of the code (== 1 for a complete code, <= 1 always)."""
        return sum(2.0 ** -length for length in self.lengths.values())

    def expected_length(self, frequencies: Dict[int, int]) -> float:
        """Average code length under ``frequencies`` (bits/symbol)."""
        total = sum(frequencies.values())
        if total == 0:
            return 0.0
        return sum(
            frequencies.get(symbol, 0) * length for symbol, length in self.lengths.items()
        ) / total

    # -- serialisation of the code itself ------------------------------------------------
    def write_table(self, writer: BitWriter) -> None:
        """Write the code as a dense table of 5-bit lengths (0 = absent)."""
        alphabet = self.max_symbol + 1 if self.lengths else 0
        writer.write_uint(alphabet, 16)
        for symbol in range(alphabet):
            writer.write_uint(self.lengths.get(symbol, 0), 5)

    @classmethod
    def read_table(cls, reader: BitReader) -> "HuffmanCode":
        alphabet = reader.read_uint(16)
        lengths: Dict[int, int] = {}
        for symbol in range(alphabet):
            length = reader.read_uint(5)
            if length:
                lengths[symbol] = length
        return cls(lengths=lengths)


def huffman_encode(symbols: Sequence[int], code: HuffmanCode = None) -> bytes:
    """Encode ``symbols`` with a (possibly provided) canonical Huffman code.

    The code table and the symbol count are embedded so the stream is
    self-contained.
    """
    symbols = [int(s) for s in symbols]
    if any(s < 0 for s in symbols):
        raise ValueError("Huffman symbols must be non-negative")
    if code is None:
        code = HuffmanCode.from_symbols(symbols)
    writer = BitWriter()
    code.write_table(writer)
    writer.write_uint(len(symbols), 32)
    codes = code.codes
    for symbol in symbols:
        if symbol not in codes:
            raise ValueError(f"symbol {symbol} is not part of the Huffman code")
        value, length = codes[symbol]
        writer.write_uint(value, length)
    return writer.getvalue()


def huffman_decode(data: bytes) -> List[int]:
    """Inverse of :func:`huffman_encode`."""
    reader = BitReader(data)
    code = HuffmanCode.read_table(reader)
    count = reader.read_uint(32)
    # Build a (length, code) -> symbol lookup for the canonical code.
    lookup: Dict[Tuple[int, int], int] = {
        (length, value): symbol for symbol, (value, length) in code.codes.items()
    }
    out: List[int] = []
    for _ in range(count):
        value = 0
        length = 0
        while True:
            value = (value << 1) | reader.read_bit()
            length += 1
            if (length, value) in lookup:
                out.append(lookup[(length, value)])
                break
            if length > 32:
                raise ValueError("corrupt Huffman stream (no code within 32 bits)")
    return out
