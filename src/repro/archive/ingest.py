"""Streaming ingest: frames flow from a feed into archive writers, bounded.

:meth:`ArchiveWriter.append_batch` takes a fully materialised list of
frames — fine for re-packing, wrong for a modality feed (a scanner, a
network socket, a decompressing tape robot) that produces frames over time
and must not buffer an unbounded number of raw images.  This module wraps
the stage pipeline's per-frame unit
(:func:`repro.coding.pipeline.encode_frame`) in three streaming fronts:

:func:`iter_compress`
    A plain generator — pull-based, so at most **one** raw frame is alive
    at a time.  Compose it with any iterator machinery.
:class:`StreamingIngestor` / :func:`ingest_frames`
    A producer thread reads the feed into a bounded queue while the caller's
    thread compresses and routes streams into the writer
    (:meth:`~repro.archive.writer.ArchiveWriter.add_stream`, or the sharded
    writer's routed equivalent).  The queue gives the feed ``queue_depth``
    frames of read-ahead — enough to hide bursty I/O — and **backpressure**:
    a semaphore is acquired *before* each frame is pulled from the feed and
    released only after its compressed stream is archived, so no more than
    ``queue_depth`` undecoded frames exist at any instant, no matter how
    fast the feed or how slow the codec.  The high-water mark is reported
    (``max_in_flight``) so tests assert the bound instead of trusting it.
:func:`ingest_async`
    The same bounded-queue contract on an asyncio event loop: the feed may
    be an async iterator (frames arriving over the network), compression is
    pushed off the loop with ``asyncio.to_thread``, and ``await`` points
    propagate the same backpressure.

Every front end accepts feed items as bare frames (auto-named by the
writer) or ``(name, frame)`` pairs (named — and, for a sharded writer,
routed by that name).  The compressed streams are byte-identical to a
batch pack of the same frames in the same order: streaming changes *when*
memory is used, never what lands on disk.  This holds for a
:class:`~repro.archive.replication.ReplicatedShardSet` too: its routed
``add_stream`` fans each stream out to the shard's primary and replicas in
order, so streamed ingest keeps every copy byte-identical — with the same
bounded-memory guarantee, since the fan-out happens after compression.
"""

from __future__ import annotations

import asyncio
import queue
import threading
from dataclasses import dataclass, field
from typing import AsyncIterable, Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from ..coding.pipeline import (
    CodecResources,
    PipelineStats,
    StagePipeline,
    encode_frame,
    encode_pipeline,
)
from ..coding.spec import CodecSpec
from .serialize import CompressedStream

__all__ = [
    "FeedItem",
    "IngestReport",
    "iter_compress",
    "StreamingIngestor",
    "ingest_frames",
    "ingest_async",
]

#: One feed element: a bare frame (auto-named by the writer) or a
#: ``(name, frame)`` pair.
FeedItem = Union[np.ndarray, Tuple[str, np.ndarray]]


def _split_item(item: FeedItem) -> Tuple[Optional[str], np.ndarray]:
    if isinstance(item, tuple):
        name, frame = item
        return str(name), np.asarray(frame)
    return None, np.asarray(item)


@dataclass
class IngestReport:
    """Summary of one streaming ingest run."""

    #: Frames archived.
    frames: int = 0
    #: Configured bound on simultaneously-held undecoded frames.
    queue_depth: int = 0
    #: Measured high-water mark of undecoded frames held at once (pulled
    #: from the feed but not yet archived); never exceeds ``queue_depth``.
    max_in_flight: int = 0
    #: Per-stage pipeline stats of the whole run (same model as batches).
    stats: PipelineStats = field(default_factory=PipelineStats)


def iter_compress(
    feed: Iterable[FeedItem],
    spec: CodecSpec,
    stats: Optional[PipelineStats] = None,
) -> Iterator[Tuple[Optional[str], CompressedStream]]:
    """Generator front end: lazily compress a feed, one frame at a time.

    Yields ``(name, stream)`` pairs (``name`` is ``None`` for bare frames).
    Pull-based, so the previous raw frame is released before the next is
    requested from the feed — constant memory with zero machinery.
    """
    resources = CodecResources(spec)
    pipeline = encode_pipeline()
    if stats is None:
        stats = PipelineStats()
    for item in feed:
        name, frame = _split_item(item)
        yield name, encode_frame(frame, spec, resources, stats, pipeline)


class _InFlightGauge:
    """Tracks how many frames are currently pulled-but-not-archived."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.current = 0
        self.peak = 0

    def enter(self) -> None:
        with self._lock:
            self.current += 1
            self.peak = max(self.peak, self.current)

    def leave(self) -> None:
        with self._lock:
            self.current -= 1


class StreamingIngestor:
    """Bounded-queue streaming ingest into an archive (or sharded) writer.

    Parameters
    ----------
    writer:
        Anything with ``add_stream(stream, name)`` and a ``spec`` —
        :class:`~repro.archive.writer.ArchiveWriter` or
        :class:`~repro.archive.sharding.ShardedArchiveWriter` (where the
        name routes the stream to its shard).
    queue_depth:
        Hard bound on undecoded frames held at once (read-ahead depth).
    """

    def __init__(self, writer, queue_depth: int = 4) -> None:
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.writer = writer
        self.queue_depth = int(queue_depth)

    def run(self, feed: Iterable[FeedItem]) -> IngestReport:
        """Drain ``feed`` into the writer; returns the run's report.

        The producer thread owns the feed iterator; this thread compresses
        and archives.  A feed or codec error stops both sides and re-raises
        here — frames fully archived before the error stay archived (the
        writer finalises them on its own ``close``).
        """
        spec: CodecSpec = self.writer.spec
        resources = CodecResources(spec)
        pipeline: StagePipeline = encode_pipeline()
        stats = PipelineStats()
        gauge = _InFlightGauge()
        permits = threading.Semaphore(self.queue_depth)
        handoff: "queue.Queue" = queue.Queue()
        sentinel = object()
        stop = threading.Event()
        feed_error: list = []

        def produce() -> None:
            iterator = iter(feed)
            while not stop.is_set():
                # Acquire a permit BEFORE pulling the next frame: the feed
                # is never asked for a frame there is no room to hold.
                permits.acquire()
                if stop.is_set():
                    break
                try:
                    item = next(iterator)
                except StopIteration:
                    break
                except BaseException as exc:  # feed failure → surface in run()
                    feed_error.append(exc)
                    break
                gauge.enter()
                handoff.put(item)
            handoff.put(sentinel)

        producer = threading.Thread(target=produce, name="ingest-feed", daemon=True)
        producer.start()
        frames = 0
        try:
            while True:
                item = handoff.get()
                if item is sentinel:
                    break
                name, frame = _split_item(item)
                stream = encode_frame(frame, spec, resources, stats, pipeline)
                self.writer.add_stream(stream, name)
                frames += 1
                gauge.leave()
                permits.release()
        finally:
            stop.set()
            permits.release()  # unblock a producer waiting on a permit
            producer.join()
        if feed_error:
            raise feed_error[0]
        return IngestReport(
            frames=frames,
            queue_depth=self.queue_depth,
            max_in_flight=gauge.peak,
            stats=stats,
        )


def ingest_frames(writer, feed: Iterable[FeedItem], queue_depth: int = 4) -> IngestReport:
    """Convenience wrapper: ``StreamingIngestor(writer, queue_depth).run(feed)``."""
    return StreamingIngestor(writer, queue_depth=queue_depth).run(feed)


async def ingest_async(
    writer,
    feed: Union[Iterable[FeedItem], AsyncIterable[FeedItem]],
    queue_depth: int = 4,
) -> IngestReport:
    """Asyncio front end with the same bounded-queue backpressure contract.

    ``feed`` may be a synchronous iterable or an async iterator (e.g. frames
    arriving over the network); compression runs in worker threads via
    ``asyncio.to_thread`` so the event loop stays responsive.  At most
    ``queue_depth`` undecoded frames are held at once, exactly as in
    :class:`StreamingIngestor`.
    """
    if queue_depth < 1:
        raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
    spec: CodecSpec = writer.spec
    resources = CodecResources(spec)
    pipeline = encode_pipeline()
    stats = PipelineStats()
    gauge = _InFlightGauge()
    permits = asyncio.Semaphore(queue_depth)
    handoff: "asyncio.Queue" = asyncio.Queue()
    sentinel = object()

    _exhausted = object()

    async def _aiter():
        if hasattr(feed, "__aiter__"):
            async for item in feed:
                yield item
        else:
            # A synchronous feed may block per pull (disk, socket); keep
            # that off the event loop too, not just the compression.
            iterator = iter(feed)
            while True:
                item = await asyncio.to_thread(next, iterator, _exhausted)
                if item is _exhausted:
                    return
                yield item

    async def produce() -> None:
        try:
            async for item in _aiter():
                await permits.acquire()
                gauge.enter()
                await handoff.put(item)
        finally:
            await handoff.put(sentinel)

    producer = asyncio.ensure_future(produce())
    frames = 0
    try:
        while True:
            item = await handoff.get()
            if item is sentinel:
                break
            name, frame = _split_item(item)
            stream = await asyncio.to_thread(
                encode_frame, frame, spec, resources, stats, pipeline
            )
            writer.add_stream(stream, name)
            frames += 1
            gauge.leave()
            permits.release()
    finally:
        if not producer.done():
            producer.cancel()
        try:
            await producer
        except asyncio.CancelledError:
            pass
    return IngestReport(
        frames=frames,
        queue_depth=queue_depth,
        max_in_flight=gauge.peak,
        stats=stats,
    )
