"""Shard placement maps: shard name → preferred worker/node id.

Manifest version 3 can carry a **placement table** — one node id per
primary shard (``""`` = unplaced) — naming the socket worker
(:mod:`repro.coding.netexec`) that each shard's distributed work should
route to first.  The same shard always landing on the same worker keeps
that worker's page cache, accelerator state and (for a future remote
store) its local shard bytes warm — the data-placement half of the
scale-out story, exactly like parameter/shard placement in distributed
training stacks.

Placement is **advisory**: the byte-identity guarantee never depends on
*which* worker ran a shard, so when a placed node is down (or the
placement names no live worker) the pool silently degrades to any-worker
routing and the caller's ``placement_fallbacks`` counter records each
miss — the set keeps ingesting and verifying at full width, just without
the affinity win.

Helpers here normalise user-facing placement inputs into the manifest's
aligned-tuple form and assign default placements:

* :func:`normalize_placement` — dict keyed by shard file name, or a
  sequence aligned with the shard list, → one node id per shard;
* :func:`assign_round_robin` — deal shards onto a node list in order, the
  default when creating a placed set without an explicit map.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "normalize_placement",
    "assign_round_robin",
    "placement_of",
]

PlacementLike = Union[Mapping[str, str], Sequence[str], None]


def normalize_placement(
    placement: PlacementLike, shard_names: Sequence[str]
) -> Tuple[str, ...]:
    """Normalise a placement input to one node id per shard, in shard order.

    ``placement`` may be a mapping of shard file name → node id (shards it
    omits are unplaced), a sequence of node ids aligned with
    ``shard_names`` (``""`` or ``None`` = unplaced), or ``None``/empty.
    Returns ``()`` when no shard ends up placed — the form under which the
    manifest stays at version 2 and keeps its pre-placement bytes.
    """
    if not placement:
        return ()
    if isinstance(placement, Mapping):
        unknown = sorted(set(placement) - set(shard_names))
        if unknown:
            raise ValueError(
                f"placement names unknown shards {unknown} "
                f"(set has {list(shard_names)})"
            )
        node_ids = tuple(str(placement.get(name, "") or "") for name in shard_names)
    else:
        if len(placement) != len(shard_names):
            raise ValueError(
                f"placement lists {len(placement)} node ids for "
                f"{len(shard_names)} shards"
            )
        node_ids = tuple(str(node or "") for node in placement)
    return node_ids if any(node_ids) else ()


def assign_round_robin(
    shard_names: Sequence[str], nodes: Sequence[str]
) -> Dict[str, str]:
    """Deal shards onto ``nodes`` round-robin: shard *i* → node *i % N*.

    The default placement when a set is created against a known worker
    fleet (``python -m repro.archive create --place node0,node1``): every
    node gets an equal share of shards and the assignment is stable across
    runs because it depends only on the orderings.
    """
    nodes = [str(node) for node in nodes if str(node)]
    if not nodes:
        raise ValueError("no node ids to place shards on")
    return {
        name: nodes[i % len(nodes)] for i, name in enumerate(shard_names)
    }


def placement_of(manifest) -> Dict[str, str]:
    """The manifest's placement map (shard file name → node id), ``{}``
    when unplaced — tolerant of pre-v3 manifests without ``node_ids``."""
    node_ids = getattr(manifest, "node_ids", ()) or ()
    return {
        name: node
        for name, node in zip(manifest.shard_names, node_ids)
        if node
    }
