"""Entry point for ``python -m repro.archive``."""

import sys

from .cli import main

sys.exit(main())
