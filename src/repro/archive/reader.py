"""Random-access archive retrieval: the read side of the container.

:class:`ArchiveReader` parses the header and index once on open (two small
reads) and from then on touches only the bytes of the frames asked for:
:meth:`~ArchiveReader.decode` seeks straight to one payload, reads exactly
``length`` bytes, checks its CRC and decodes it — other frames' payloads are
never read, which is what makes retrieval from a large archive cheap.  The
``bytes_read`` counter exposes exactly how many payload bytes were touched,
so tests and the retrieval benchmark can *prove* the access pattern rather
than infer it from timing alone.

Payload reads are **zero-copy** by default: when the backend offers
:meth:`~repro.archive.backend.StorageBackend.read_range` (files are
memory-mapped, memory containers slice their buffer), a frame's payload is
handed to the deserialiser as a memoryview of the backend's storage — no
intermediate ``bytes`` object, no seek/read pair, no copy of the chunk
bytes.  ``bytes_read`` advances identically on both paths (it counts
payload bytes *touched*, not copies made); ``zero_copy_reads`` counts how
many payload reads actually took the view path, so tests can prove which
path served them.  Backends without a zero-copy path — and readers opened
with ``zero_copy=False`` — fall back to the historical seek + read,
byte for byte.

Whole-archive decoding goes back through the batched pipeline:
:meth:`~ArchiveReader.to_batch` reassembles a
:class:`~repro.coding.pipeline.CompressedBatch` from the stored streams and
:meth:`~ArchiveReader.decode_all` feeds it to
:func:`~repro.coding.pipeline.decompress_frames`, so bulk reads get the same
per-stage wall-clock stats as in-memory pipeline runs.
"""

from __future__ import annotations

import struct
import threading
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..coding.pipeline import (
    CodecResources,
    CompressedBatch,
    PipelineStats,
    decompress_frames,
)
from ..coding.spec import CodecSpec, default_engine
from .backend import FileBackend, RetryPolicy, StorageBackend, resolve_backend
from .format import (
    ArchiveFormatError,
    ArchiveIntegrityError,
    LAYOUT_SUBBAND_MAJOR,
    FrameInfo,
    TruncatedArchiveError,
    crc32,
    read_header,
    read_index,
)
from .serialize import (
    PAYLOAD_HEAD_SIZE,
    CompressedStream,
    codec_name_for_stream,
    deserialize_stream,
    frame_spec,
    materialize_stream,
    parse_section_table,
    sections_to_stream,
)

__all__ = ["ArchiveReader", "VerifyReport"]

PathLike = Union[str, Path]
Target = Union[str, Path, StorageBackend]
FrameKey = Union[int, str, FrameInfo]


class VerifyReport(dict):
    """Summary of a :meth:`ArchiveReader.verify` pass (a plain dict with
    ``frames``, ``payload_bytes`` and ``deep`` keys, printable as is)."""


class ArchiveReader:
    """Opens an archive for listing, random access, and verification.

    Parameters
    ----------
    path:
        Archive file to open — a filesystem path or any
        :class:`~repro.archive.backend.StorageBackend`.
    engine:
        Entropy-coding engine for decoding (``"fast"``, ``"scalar"`` or
        ``"turbo"``); ``None`` (the default) resolves through
        :func:`~repro.coding.spec.default_engine` (the ``REPRO_ENGINE``
        environment variable, else ``"fast"``).
    verify_checksums:
        Check each payload's CRC-32 on every read (default).  Disable only
        for benchmarking the raw retrieval path.
    retry:
        A :class:`~repro.archive.backend.RetryPolicy` applied to backend
        reads (open and payload retrieval), absorbing *transient*
        ``OSError`` faults with bounded exponential backoff; absorbed
        faults are counted in ``reader.retries``.  ``None`` (the default)
        disables retrying.  Persistent damage (checksum mismatches) is
        never retried.
    zero_copy:
        Serve payload reads as memoryviews of the backend's storage
        (mmap for files) where the backend supports it (default).  Pass
        ``False`` to force the historical seek + read path — results are
        byte-identical either way.
    """

    def __init__(
        self,
        path: Target,
        engine: Optional[str] = None,
        verify_checksums: bool = True,
        retry: Optional[RetryPolicy] = None,
        on_retry: Optional[Callable[[BaseException], None]] = None,
        zero_copy: bool = True,
    ) -> None:
        #: Storage backend holding the container's bytes (paths resolve to
        #: :class:`~repro.archive.backend.FileBackend`).
        self.backend = resolve_backend(path)
        self.path = Path(self.backend.describe())
        self.engine = engine if engine is not None else default_engine()
        self.verify_checksums = verify_checksums
        #: Whether payload reads may take the backend's zero-copy path.
        self.zero_copy = bool(zero_copy)
        #: Retry policy for backend reads (single attempt when ``None``).
        self.retry = retry if retry is not None else RetryPolicy.none()
        #: Total payload bytes read so far (random access reads only the
        #: requested frames' payloads; this counter is the evidence).
        #: Identical whichever path — copying or zero-copy — served them.
        self.bytes_read = 0
        #: Payload reads served zero-copy (a view of the backend's storage
        #: rather than a fresh ``bytes`` object).
        self.zero_copy_reads = 0
        #: Transient read faults absorbed by the retry policy so far.
        self.retries = 0
        # External retry observer (the sharded reader's set-level counter);
        # called even when the open itself ultimately fails, so absorbed
        # faults are never lost with a reader that was never constructed.
        self._retry_listener = on_retry
        # Payload reads are a seek+read pair on one shared handle; the lock
        # makes the pair atomic so concurrent readers never interleave.
        self._io_lock = threading.Lock()
        self._fh, self.header, self.frames = self.retry.run(
            self._open, on_retry=self._note_retry
        )
        self._codecs: Dict[Tuple, object] = {}

    def _open(self):
        """One open attempt: header + index, closing the handle on failure."""
        fh = self.backend.open_read()
        try:
            header = read_header(fh)
            fh.seek(0, 2)
            size = fh.tell()
            frames: List[FrameInfo] = read_index(fh, header, size)
        except Exception:
            fh.close()
            raise
        return fh, header, frames

    def _note_retry(self, exc: BaseException) -> None:
        with self._io_lock:
            self.retries += 1
        if self._retry_listener is not None:
            self._retry_listener(exc)

    # -- listing ------------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[FrameInfo]:
        return iter(self.frames)

    def names(self) -> List[str]:
        return [entry.name for entry in self.frames]

    @property
    def compressed_bytes(self) -> int:
        return sum(entry.length for entry in self.frames)

    @property
    def raw_bytes(self) -> int:
        return sum(entry.raw_bytes for entry in self.frames)

    def find(self, key: FrameKey) -> FrameInfo:
        """Resolve a frame by index (negative allowed), name, or identity."""
        if isinstance(key, FrameInfo):
            return key
        if isinstance(key, (int, np.integer)):
            try:
                return self.frames[key]
            except IndexError as exc:
                raise KeyError(
                    f"archive has {len(self.frames)} frames, no index {key}"
                ) from exc
        for entry in self.frames:
            if entry.name == key:
                return entry
        raise KeyError(f"archive has no frame named {key!r}")

    # -- retrieval ----------------------------------------------------------------------
    def read_payload(self, key: FrameKey) -> bytes:
        """Read one frame's payload bytes (and nothing else) off disk."""
        entry = self.find(key)

        def _read() -> bytes:
            with self._io_lock:
                self._fh.seek(entry.offset)
                return self._fh.read(entry.length)

        payload = self.retry.run(_read, on_retry=self._note_retry)
        if len(payload) != entry.length:
            raise TruncatedArchiveError(
                f"frame {entry.name!r}: payload ends after "
                f"{len(payload)} of {entry.length} bytes"
            )
        with self._io_lock:
            self.bytes_read += len(payload)
        if self.verify_checksums and crc32(payload) != entry.crc32:
            raise ArchiveIntegrityError(
                f"frame {entry.name!r}: payload checksum mismatch "
                "(archive is corrupted)"
            )
        return payload

    def read_payload_view(self, key: FrameKey) -> memoryview:
        """One frame's payload as a zero-copy view of the backend's storage.

        Files are served from a lazily-created read-only mmap, memory
        containers from their buffer — no intermediate ``bytes`` object is
        built.  Truncation and CRC checks are the same as
        :meth:`read_payload`'s, and ``bytes_read`` advances identically;
        ``zero_copy_reads`` counts the reads this path actually served.
        When the backend has no zero-copy support (or it degrades, e.g.
        mmap refused), the result is a view over a normal
        :meth:`read_payload` — correct, just not zero-copy.
        """
        entry = self.find(key)
        view: Optional[memoryview] = None
        if self.zero_copy:

            def _read_range() -> Optional[memoryview]:
                with self._io_lock:
                    return self.backend.read_range(entry.offset, entry.length)

            view = self.retry.run(_read_range, on_retry=self._note_retry)
        if view is None:
            return memoryview(self.read_payload(entry))
        if len(view) != entry.length:
            raise TruncatedArchiveError(
                f"frame {entry.name!r}: payload ends after "
                f"{len(view)} of {entry.length} bytes"
            )
        with self._io_lock:
            self.bytes_read += len(view)
            self.zero_copy_reads += 1
        if self.verify_checksums and crc32(view) != entry.crc32:
            raise ArchiveIntegrityError(
                f"frame {entry.name!r}: payload checksum mismatch "
                "(archive is corrupted)"
            )
        return view

    def read_payload_slice(self, key: FrameKey, start: int, length: int) -> memoryview:
        """Read ``length`` bytes at ``start`` *within* one frame's payload.

        This is the byte-range primitive behind HTTP ``Range:`` serving
        (:mod:`repro.archive.server`): only the requested window is read —
        ``bytes_read`` advances by exactly ``length``, not the payload size —
        and the zero-copy path (``zero_copy_reads``) serves the window as a
        view of the backend's storage when available.  A partial window
        cannot be checksummed (the CRC covers the whole payload), so slice
        reads never CRC-check; callers wanting integrity read the full
        payload.  Out-of-payload windows raise ``ValueError``; a payload
        that ends early raises :class:`TruncatedArchiveError`.
        """
        entry = self.find(key)
        if start < 0 or length < 0 or start + length > entry.length:
            raise ValueError(
                f"frame {entry.name!r}: slice [{start}, {start + length}) outside "
                f"its {entry.length}-byte payload"
            )
        view: Optional[memoryview] = None
        if self.zero_copy:

            def _read_range() -> Optional[memoryview]:
                with self._io_lock:
                    return self.backend.read_range(entry.offset + start, length)

            view = self.retry.run(_read_range, on_retry=self._note_retry)
        if view is None:

            def _read() -> bytes:
                with self._io_lock:
                    self._fh.seek(entry.offset + start)
                    return self._fh.read(length)

            data = self.retry.run(_read, on_retry=self._note_retry)
            if len(data) != length:
                raise TruncatedArchiveError(
                    f"frame {entry.name!r}: payload slice ends after "
                    f"{len(data)} of {length} bytes"
                )
            with self._io_lock:
                self.bytes_read += len(data)
            return memoryview(data)
        if len(view) != length:
            raise TruncatedArchiveError(
                f"frame {entry.name!r}: payload slice ends after "
                f"{len(view)} of {length} bytes"
            )
        with self._io_lock:
            self.bytes_read += len(view)
            self.zero_copy_reads += 1
        return view

    def read_stream(self, key: FrameKey) -> CompressedStream:
        """Deserialise one frame's compressed stream without decoding it.

        On the zero-copy path the stream's chunk payloads are views into
        the backend's storage; they stay valid until :meth:`close`.
        """
        entry = self.find(key)
        stream = deserialize_stream(self.read_payload_view(entry))
        if (
            codec_name_for_stream(stream) != entry.codec
            or stream.scales != entry.scales
            or tuple(stream.image_shape) != entry.shape
        ):
            raise ArchiveFormatError(
                f"frame {entry.name!r}: payload metadata disagrees with its "
                "index entry"
            )
        return stream

    def spec_for(self, key: FrameKey) -> CodecSpec:
        """The stored :class:`CodecSpec` of one frame (index metadata only —
        no payload bytes are read)."""
        return frame_spec(self.find(key)).replace(engine=self.engine)

    def _codec_for(self, entry: FrameInfo):
        key = (entry.codec, entry.scales, entry.bit_depth, entry.bank_name, entry.use_rle)
        if key not in self._codecs:
            # Fetched through the process-wide resource LRU, so the codec's
            # word-length planning amortises across readers and CLI calls.
            spec = self.spec_for(entry)
            self._codecs[key] = CodecResources(spec).codec_for(entry.scales)
        return self._codecs[key]

    def decode(self, key: FrameKey) -> np.ndarray:
        """Random-access decode of a single frame, bit for bit."""
        entry = self.find(key)
        return self._codec_for(entry).decode(self.read_stream(entry))

    def read_preview_stream(self, key: FrameKey, at_scale: int) -> CompressedStream:
        """Deserialise just the chunks a scale-``at_scale`` preview needs.

        Subband-major frames are read as a **strict byte prefix**: the
        payload head, the section table, and then only the leading run of
        sections coarser than ``at_scale`` — ``bytes_read`` advances by
        exactly ``prefix_length(at_scale)``, never the full payload.  The
        per-section CRCs checked here (when ``verify_checksums``) are what
        make a partial read safe without the whole-payload checksum.
        Frame-major (v1) frames have no prefix property, so they fall back
        to a full :meth:`read_stream` — the preview then only saves
        synthesis compute, not bytes.
        """
        entry = self.find(key)
        if not 0 <= at_scale <= entry.scales:
            raise ValueError(
                f"at_scale must be within [0, {entry.scales}], got {at_scale}"
            )
        if entry.layout != LAYOUT_SUBBAND_MAJOR:
            return self.read_stream(entry)
        head = bytes(self.read_payload_slice(entry, 0, PAYLOAD_HEAD_SIZE))
        _sentinel, _version, meta_len = struct.unpack("<IBI", head)
        if PAYLOAD_HEAD_SIZE + meta_len + 4 > entry.length:
            raise TruncatedArchiveError(
                f"frame {entry.name!r}: {entry.length}-byte payload cannot hold "
                f"its declared {meta_len}-byte section table"
            )
        meta = bytes(
            self.read_payload_slice(entry, PAYLOAD_HEAD_SIZE, meta_len + 4)
        )
        table = parse_section_table(head + meta)
        needed = table.prefix_length(at_scale) - table.body_offset
        body = self.read_payload_slice(entry, table.body_offset, needed)
        stream = sections_to_stream(
            table, body, at_scale=at_scale, verify=self.verify_checksums
        )
        if (
            codec_name_for_stream(stream) != entry.codec
            or stream.scales != entry.scales
            or tuple(stream.image_shape) != entry.shape
        ):
            raise ArchiveFormatError(
                f"frame {entry.name!r}: payload metadata disagrees with its "
                "index entry"
            )
        return stream

    def read_preview(self, key: FrameKey, at_scale: int) -> np.ndarray:
        """Decode the scale-``at_scale`` preview of one frame.

        ``at_scale=0`` is the full-resolution image, bit for bit; each
        higher scale halves both dimensions.  See
        :meth:`read_preview_stream` for the byte-prefix guarantee.
        """
        entry = self.find(key)
        stream = self.read_preview_stream(entry, at_scale)
        return self._codec_for(entry).decode_preview(stream, at_scale)

    def read_roi(self, key: FrameKey, y0: int, y1: int) -> np.ndarray:
        """Decode just the output row band ``[y0, y1)`` of one frame.

        Bit-exact to ``decode(key)[y0:y1]``.  A row band draws on every
        subband, so the whole payload is still read; the saving is in the
        windowed inverse transform, not bytes.
        """
        entry = self.find(key)
        return self._codec_for(entry).decode_roi(self.read_stream(entry), y0, y1)

    def decode_range(self, start: int, stop: Optional[int] = None) -> List[np.ndarray]:
        """Decode the frames of ``[start, stop)`` without touching the rest."""
        return [self.decode(entry) for entry in self.frames[start:stop]]

    # -- bulk path through the batched pipeline -----------------------------------------
    def to_batch(self, keys: Optional[Sequence[FrameKey]] = None) -> CompressedBatch:
        """Reassemble stored streams into a pipeline :class:`CompressedBatch`.

        The selected frames must share one codec configuration (always true
        for archives written by a single-configuration writer); the result
        feeds straight into :func:`~repro.coding.pipeline.decompress_frames`.
        """
        entries = [self.find(key) for key in keys] if keys is not None else list(self.frames)
        configs = {
            (e.codec, e.bit_depth, e.bank_name, e.use_rle) for e in entries
        }
        if len(configs) > 1:
            raise ValueError(
                "frames use mixed codec configurations; decode them "
                f"individually instead ({sorted(configs)})"
            )
        if entries:
            spec = self.spec_for(entries[0])
        else:
            spec = CodecSpec(engine=self.engine)
        return CompressedBatch(
            codec=spec.codec,
            engine=spec.engine,
            codec_options=spec.codec_kwargs(),
            streams=[self.read_stream(entry) for entry in entries],
            stats=PipelineStats(),
            spec=spec,
        )

    def decode_all(
        self, keys: Optional[Sequence[FrameKey]] = None, workers: int = 1
    ) -> Tuple[List[np.ndarray], PipelineStats]:
        """Decode every (selected) frame through the batched pipeline.

        ``workers`` > 1 shards the decode across a process pool
        (:class:`~repro.coding.executor.ParallelExecutor`); the streams are
        materialised to bytes first, since zero-copy views cannot cross a
        process boundary.
        """
        batch = self.to_batch(keys)
        if workers != 1:
            for stream in batch.streams:
                materialize_stream(stream)
        return decompress_frames(batch, workers=workers)

    # -- integrity ----------------------------------------------------------------------
    def _verify_frame(self, entry: FrameInfo, deep: bool) -> int:
        """Verify one frame (checksum, optionally a full decode); returns
        its payload size in bytes."""
        payload = self.read_payload_view(entry)
        if not self.verify_checksums and crc32(payload) != entry.crc32:
            # read_payload checksums every read unless the reader was
            # opened with verify_checksums=False; only then check here.
            raise ArchiveIntegrityError(
                f"frame {entry.name!r}: payload checksum mismatch"
            )
        if deep:
            image = self._codec_for(entry).decode(deserialize_stream(payload))
            if tuple(image.shape) != entry.shape:
                raise ArchiveFormatError(
                    f"frame {entry.name!r}: decoded shape {tuple(image.shape)} "
                    f"disagrees with the index entry {entry.shape}"
                )
        return len(payload)

    def verify(self, deep: bool = False, workers: int = 1) -> VerifyReport:
        """Check every frame's checksum; with ``deep``, decode each frame too.

        Raises :class:`ArchiveIntegrityError` / :class:`ArchiveFormatError`
        on the first failure; returns a summary when the archive is sound.

        ``workers`` > 1 shards the frames across a process pool (file-backed
        archives only — other backends fall back to serial): each worker
        reopens the archive and verifies its share, so deep verification
        parallelises the way ``pack --workers`` does.  Socket workers
        (``"host:port,host:port"`` or a
        :class:`~repro.coding.netexec.WorkerPool`) shard the frames across
        remote workers instead (which must see the archive's filesystem,
        like the pool's processes).  The payload reads then happen in the
        workers, so this reader's ``bytes_read`` counter does not advance.
        """
        from ..coding.executor import is_socket_workers

        if is_socket_workers(workers):
            if len(self.frames) > 0 and isinstance(self.backend, FileBackend):
                return self._verify_socket(deep, workers)
            workers = 1
        if workers > 1 and len(self.frames) > 1 and isinstance(self.backend, FileBackend):
            return self._verify_parallel(deep, workers)
        payload_bytes = 0
        for entry in self.frames:
            payload_bytes += self._verify_frame(entry, deep)
        return VerifyReport(frames=len(self.frames), payload_bytes=payload_bytes, deep=deep)

    def _verify_parallel(self, deep: bool, workers: int) -> VerifyReport:
        from concurrent.futures import ProcessPoolExecutor

        from ..coding.executor import pool_context, shard_indices

        shards = shard_indices(len(self.frames), workers)
        with ProcessPoolExecutor(
            max_workers=len(shards), mp_context=pool_context()
        ) as pool:
            futures = [
                pool.submit(
                    _verify_frames_worker,
                    str(self.backend.path),
                    indices,
                    deep,
                    self.engine,
                    self.verify_checksums,
                )
                for indices in shards
            ]
            payload_bytes = sum(future.result() for future in futures)
        return VerifyReport(frames=len(self.frames), payload_bytes=payload_bytes, deep=deep)

    def _verify_socket(self, deep: bool, workers) -> VerifyReport:
        """Verify via socket workers: one ``verify_frames`` RPC per shard
        of the frame list, each worker reopening the archive by path."""
        from concurrent.futures import ThreadPoolExecutor

        from ..coding.executor import shard_indices
        from ..coding.netexec import WorkerPool

        pool, owns = WorkerPool.from_any(workers)
        try:
            live = pool.ensure_connected()
            shards = shard_indices(len(self.frames), len(live))

            def run_shard(item) -> int:
                position, indices = item
                result, _node = pool.call(
                    "verify_frames",
                    {
                        "path": str(self.backend.path),
                        "indices": indices,
                        "deep": deep,
                        "engine": self.engine,
                        "verify_checksums": self.verify_checksums,
                    },
                    preferred_index=live[position % len(live)],
                )
                return result["payload_bytes"]

            with ThreadPoolExecutor(max_workers=len(shards)) as threads:
                payload_bytes = sum(threads.map(run_shard, enumerate(shards)))
        finally:
            if owns:
                pool.disconnect()
        return VerifyReport(frames=len(self.frames), payload_bytes=payload_bytes, deep=deep)

    # -- lifecycle ----------------------------------------------------------------------
    def close(self) -> None:
        self._fh.close()
        # Drop the backend's cached mapping; views still referenced keep
        # the underlying storage alive until they are collected.
        self.backend.release()

    def __enter__(self) -> "ArchiveReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _verify_frames_worker(
    path: str, indices: Sequence[int], deep: bool, engine: str, verify_checksums: bool
) -> int:
    """Process-pool entry point: verify a subset of one archive's frames."""
    with ArchiveReader(path, engine=engine, verify_checksums=verify_checksums) as reader:
        return sum(reader._verify_frame(reader.frames[i], deep) for i in indices)
