"""Archive creation and append: the write side of the container.

The writer addresses its container through a storage backend
(:mod:`repro.archive.backend`): every path-based call is resolved to a
:class:`~repro.archive.backend.FileBackend`, so the historical path API is
unchanged and the bytes written are identical, while tests and staging
flows can target a :class:`~repro.archive.backend.MemoryBackend` (or any
future backend) without touching the writer.

:class:`ArchiveWriter` streams frame payloads to disk as they are added and
finalises the container on :meth:`~ArchiveWriter.close` by writing the index
table and patching the header.  Until ``close`` runs a *created* archive's
header keeps a zero index pointer, so a crashed writer leaves a file the
reader rejects with a clean "never finalised" error instead of a silently
short archive.

Appending (:meth:`ArchiveWriter.append`) never rewrites existing payloads
*or* the existing index: new payloads are written after the old index, and
only ``close`` — after the new index is safely on disk — patches the header
in a single small write.  A writer that crashes mid-append therefore leaves
the archive exactly as it was before the append (the old header still
points at the intact old index; the dangling new payload bytes are simply
unreferenced).  The dead old-index bytes this leaves behind cost a few tens
of bytes per frame per append.  The codec configuration of an appending
writer defaults to that of the last stored frame so a series keeps
compressing the way it started.

The writer's configuration is one :class:`~repro.coding.spec.CodecSpec`
(``writer.spec``); the legacy ``codec=``/``scales=``/``engine=`` keywords
still work and are folded into a spec by the compatibility shim.
Compression is delegated to the stage pipeline
(:func:`repro.coding.pipeline.compress_frames`):
:meth:`ArchiveWriter.append_batch` (alias :meth:`add_frames`) runs one
pipeline call over the new frames — sharded across a process pool when
``workers`` > 1 — and archives the resulting streams, accumulating the
pipeline's per-stage wall-clock stats in ``writer.stats``.  Pre-compressed
batches (:meth:`ArchiveWriter.add_batch`) and single streams
(:meth:`ArchiveWriter.add_stream`) are archived as is.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..coding.executor import is_socket_workers
from ..coding.pipeline import CompressedBatch, PipelineStats, compress_frames
from ..coding.spec import CodecSpec, default_engine, reject_spec_overrides
from .backend import StorageBackend, resolve_backend
from .format import (
    HEADER_SIZE,
    LAYOUT_FRAME_MAJOR,
    LAYOUT_SUBBAND_MAJOR,
    LAYOUTS,
    VERSION,
    FrameInfo,
    Header,
    crc32,
    pack_header,
    pack_index,
    read_header,
    read_index,
)
from .serialize import (
    CompressedStream,
    frame_spec,
    serialize_stream,
    spec_for_stream,
)

__all__ = ["ArchiveWriter"]

PathLike = Union[str, Path]
#: A writer/reader target: a filesystem path or any storage backend.
Target = Union[str, Path, StorageBackend]


class ArchiveWriter:
    """Writes a frame archive; use :meth:`create` or :meth:`append` to open.

    The codec configuration is a :class:`~repro.coding.spec.CodecSpec`
    (``writer.spec``); :meth:`create`/:meth:`append` also accept the legacy
    keyword style (``codec=``, ``scales=``, ``engine=``, plus anything the
    codec constructor takes — ``bank``, ``bit_depth``, ``use_rle``, ...)
    and build the spec through the compatibility shim.  ``workers`` sets
    the default process-pool width for :meth:`append_batch`.
    """

    def __init__(
        self,
        backend: Target,
        fh,
        entries: List[FrameInfo],
        offset: int,
        spec: CodecSpec,
        workers: int = 1,
        layout: str = LAYOUT_FRAME_MAJOR,
    ) -> None:
        if layout not in LAYOUTS:
            raise ValueError(f"unknown payload layout {layout!r} (expected one of {LAYOUTS})")
        #: Storage backend holding the container's bytes.
        self.backend = resolve_backend(backend)
        self.path = Path(self.backend.describe())
        #: The writer's full compression configuration.
        self.spec = spec
        #: Payload layout for frames added by this writer
        #: (``"frame-major"`` or the progressive ``"subband-major"``).
        self.layout = layout
        #: Default workers for :meth:`append_batch` — a pool width
        #: (1 = serial) or socket worker addresses for distributed
        #: compression (:mod:`repro.coding.netexec`).
        self.workers = workers if is_socket_workers(workers) else int(workers)
        #: Aggregated pipeline stats of every :meth:`append_batch`/:meth:`add_batch`
        #: call on this writer (wall-clock per stage, sizes, ratios).
        self.stats = PipelineStats()
        self._fh = fh
        self._entries = entries
        self._names = {entry.name for entry in entries}
        self._offset = offset
        self._closed = False

    # -- legacy configuration views -----------------------------------------------------
    @property
    def codec(self) -> str:
        return self.spec.codec

    @property
    def scales(self) -> int:
        return self.spec.scales

    @property
    def engine(self) -> str:
        return self.spec.engine

    @property
    def codec_options(self) -> Dict:
        return self.spec.codec_kwargs()

    # -- construction -------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: Target,
        codec: Optional[str] = None,
        scales: Optional[int] = None,
        engine: Optional[str] = None,
        overwrite: bool = False,
        spec: Optional[CodecSpec] = None,
        workers: int = 1,
        layout: str = LAYOUT_FRAME_MAJOR,
        **codec_options,
    ) -> "ArchiveWriter":
        """Create a new archive at ``path`` (refuses to clobber unless told to).

        Configuration defaults: s-transform codec, 4 scales, and the
        :func:`~repro.coding.spec.default_engine` entropy tier.
        Passing ``spec`` together with any explicit codec keyword is an
        error, never a silent override.  ``layout="subband-major"`` stores
        payloads coarsest-subband-first so previews decode from a strict
        byte prefix (and makes the container format version 2).
        """
        if spec is None:
            spec = CodecSpec.from_kwargs(
                codec=codec if codec is not None else "s-transform",
                scales=scales if scales is not None else 4,
                engine=engine,
                **codec_options,
            )
        else:
            reject_spec_overrides(codec_options, codec=codec, scales=scales, engine=engine)
        backend = resolve_backend(path)
        if backend.exists() and not overwrite:
            raise FileExistsError(
                f"archive {backend.describe()} already exists (pass overwrite=True)"
            )
        fh = backend.create()
        fh.write(
            pack_header(
                Header(
                    version=VERSION,
                    flags=0,
                    frame_count=0,
                    index_offset=0,
                    index_size=0,
                    index_crc=0,
                )
            )
        )
        return cls(backend, fh, [], HEADER_SIZE, spec, workers=workers, layout=layout)

    @classmethod
    def append(
        cls,
        path: Target,
        codec: Optional[str] = None,
        scales: Optional[int] = None,
        engine: Optional[str] = None,
        spec: Optional[CodecSpec] = None,
        workers: int = 1,
        layout: Optional[str] = None,
        **codec_options,
    ) -> "ArchiveWriter":
        """Open an existing archive to add frames after the ones it holds.

        The codec configuration defaults to the last stored frame's
        (codec, scales, bank, bit depth, RLE choice), and the payload
        ``layout`` to the last stored frame's layout, so an appended series
        stays homogeneous unless overridden explicitly.
        """
        backend = resolve_backend(path)
        fh = backend.open_modify()
        try:
            header = read_header(fh)
            fh.seek(0, 2)
            entries = read_index(fh, header, fh.tell())
            if spec is None:
                if entries and codec is None:
                    # Inherit the stored configuration via the last frame's
                    # spec; explicit keywords still override field by field.
                    inherited = frame_spec(entries[-1])
                    spec = inherited.replace(
                        engine=engine if engine is not None else default_engine(),
                        scales=scales if scales is not None else inherited.scales,
                    ).replace_options(**codec_options)
                else:
                    spec = CodecSpec.from_kwargs(
                        codec=codec or "s-transform",
                        scales=scales if scales is not None else 4,
                        engine=engine,
                        **codec_options,
                    )
            else:
                reject_spec_overrides(
                    codec_options, codec=codec, scales=scales, engine=engine
                )
            if layout is None:
                layout = entries[-1].layout if entries else LAYOUT_FRAME_MAJOR
            # New payloads go after the old index, which stays valid (and
            # the header keeps pointing at it) until close() — so a crash
            # mid-append leaves the archive exactly as it was.
            fh.seek(0, 2)
            return cls(
                backend, fh, entries, fh.tell(), spec, workers=workers, layout=layout
            )
        except BaseException:
            fh.close()
            raise

    # -- adding frames ------------------------------------------------------------------
    @property
    def frame_names(self) -> List[str]:
        """Names of every frame stored so far (existing + added)."""
        return [entry.name for entry in self._entries]

    def _next_name(self) -> str:
        name = f"frame_{len(self._entries):05d}"
        while name in self._names:
            name += "_"
        return name

    def add_stream(self, stream: CompressedStream, name: Optional[str] = None) -> FrameInfo:
        """Archive one already-compressed stream under ``name``."""
        if self._closed:
            raise ValueError("archive writer is closed")
        name = name if name is not None else self._next_name()
        if name in self._names:
            raise ValueError(f"archive already has a frame named {name!r}")
        payload = serialize_stream(stream, layout=self.layout)
        stream_spec = spec_for_stream(stream)
        entry = FrameInfo(
            index=len(self._entries),
            name=name,
            codec=stream_spec.codec,
            scales=stream_spec.scales,
            bit_depth=stream_spec.bit_depth,
            shape=(int(stream.image_shape[0]), int(stream.image_shape[1])),
            offset=self._offset,
            length=len(payload),
            crc32=crc32(payload),
            raw_bytes=stream.original_bytes,
            bank_name=stream_spec.bank_name,
            use_rle=bool(stream_spec.use_rle),
            layout=self.layout,
        )
        self._fh.seek(self._offset)
        self._fh.write(payload)
        self._offset += len(payload)
        self._entries.append(entry)
        self._names.add(name)
        return entry

    def add_batch(
        self, batch: CompressedBatch, names: Optional[Sequence[str]] = None
    ) -> List[FrameInfo]:
        """Archive every stream of a :func:`compress_frames` batch."""
        if batch.codec != self.codec:
            raise ValueError(
                f"batch was compressed with codec {batch.codec!r}, "
                f"writer is configured for {self.codec!r}"
            )
        if names is not None and len(names) != len(batch.streams):
            raise ValueError(
                f"{len(names)} names for {len(batch.streams)} streams"
            )
        entries = [
            self.add_stream(stream, None if names is None else names[i])
            for i, stream in enumerate(batch.streams)
        ]
        self.stats.merge(batch.stats)
        return entries

    def append_batch(
        self,
        frames: Sequence[np.ndarray],
        names: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
    ) -> List[FrameInfo]:
        """Compress ``frames`` through the stage pipeline and archive them.

        ``workers`` overrides the writer's default pool width for this call;
        any value > 1 shards the batch across a process pool
        (:class:`~repro.coding.executor.ParallelExecutor`) with streams
        byte-identical to serial compression.
        """
        batch = compress_frames(
            frames,
            spec=self.spec,
            workers=self.workers if workers is None else workers,
        )
        return self.add_batch(batch, names)

    def add_frames(
        self,
        frames: Sequence[np.ndarray],
        names: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
    ) -> List[FrameInfo]:
        """Alias of :meth:`append_batch` (the pre-spec name)."""
        return self.append_batch(frames, names=names, workers=workers)

    # -- finalisation -------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def close(self) -> None:
        """Write the index table, patch the header, and close the file."""
        if self._closed:
            return
        index = pack_index(self._entries)
        self._fh.seek(self._offset)
        self._fh.write(index)
        self._fh.truncate()
        # The new index must be on disk before the header points at it:
        # until the header patch below, an appended archive still reads as
        # its previous state.
        self._fh.flush()
        # Frame-major-only archives stay byte-identical version-1 files;
        # the header only says version 2 when a subband-major payload (a
        # v2 wire feature) is actually present.
        subband_major = any(
            entry.layout == LAYOUT_SUBBAND_MAJOR for entry in self._entries
        )
        header = Header(
            version=VERSION if subband_major else 1,
            flags=0,
            frame_count=len(self._entries),
            index_offset=self._offset,
            index_size=len(index),
            index_crc=crc32(index),
        )
        self._fh.seek(0)
        self._fh.write(pack_header(header))
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "ArchiveWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Finalise even on error: every frame fully added so far stays
        # retrievable, and a half-written add_stream cannot happen because
        # the entry is only recorded after its payload is on disk.
        self.close()
