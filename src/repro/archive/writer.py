"""Archive creation and append: the write side of the container.

:class:`ArchiveWriter` streams frame payloads to disk as they are added and
finalises the container on :meth:`~ArchiveWriter.close` by writing the index
table and patching the header.  Until ``close`` runs a *created* archive's
header keeps a zero index pointer, so a crashed writer leaves a file the
reader rejects with a clean "never finalised" error instead of a silently
short archive.

Appending (:meth:`ArchiveWriter.append`) never rewrites existing payloads
*or* the existing index: new payloads are written after the old index, and
only ``close`` — after the new index is safely on disk — patches the header
in a single small write.  A writer that crashes mid-append therefore leaves
the archive exactly as it was before the append (the old header still
points at the intact old index; the dangling new payload bytes are simply
unreferenced).  The dead old-index bytes this leaves behind cost a few tens
of bytes per frame per append.  The codec configuration of an appending
writer defaults to that of the last stored frame so a series keeps
compressing the way it started.

Compression itself is delegated to the batched pipeline
(:func:`repro.coding.pipeline.compress_frames`): :meth:`ArchiveWriter.add_frames`
runs one pipeline call over the new frames and archives the resulting
streams, accumulating the pipeline's per-stage wall-clock stats in
``writer.stats``.  Pre-compressed batches (:meth:`ArchiveWriter.add_batch`)
and single streams (:meth:`ArchiveWriter.add_stream`) are archived as is.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..coding.pipeline import (
    CODEC_NAMES,
    CompressedBatch,
    PipelineStats,
    compress_frames,
)
from .format import (
    HEADER_SIZE,
    VERSION,
    ArchiveError,
    FrameInfo,
    Header,
    crc32,
    pack_header,
    pack_index,
    read_header,
    read_index,
)
from .serialize import CompressedStream, codec_name_for_stream, serialize_stream

__all__ = ["ArchiveWriter"]

PathLike = Union[str, Path]


def _merge_stats(into: PipelineStats, stats: PipelineStats) -> None:
    into.frames += stats.frames
    into.pixels += stats.pixels
    into.raw_bytes += stats.raw_bytes
    into.compressed_bytes += stats.compressed_bytes
    for stage, seconds in stats.stage_seconds.items():
        into.add_stage(stage, seconds)
    into.accelerator_reports.extend(stats.accelerator_reports)


class ArchiveWriter:
    """Writes a frame archive; use :meth:`create` or :meth:`append` to open.

    Parameters mirror the batched pipeline: ``codec`` is a
    :data:`~repro.coding.pipeline.CODEC_NAMES` name, ``scales`` the requested
    decomposition depth (clamped per frame to what its geometry supports),
    ``engine`` the entropy-coding engine, and ``codec_options`` anything the
    codec constructor takes (``bank``, ``bit_depth``, ``use_rle``, ...).
    """

    def __init__(
        self,
        path: PathLike,
        fh,
        entries: List[FrameInfo],
        offset: int,
        codec: str,
        scales: int,
        engine: str,
        codec_options: Dict,
    ) -> None:
        if codec not in CODEC_NAMES:
            raise ValueError(f"unknown codec {codec!r} (expected one of {CODEC_NAMES})")
        self.path = Path(path)
        self.codec = codec
        self.scales = scales
        self.engine = engine
        self.codec_options = dict(codec_options)
        #: Aggregated pipeline stats of every :meth:`add_frames`/:meth:`add_batch`
        #: call on this writer (wall-clock per stage, sizes, ratios).
        self.stats = PipelineStats()
        self._fh = fh
        self._entries = entries
        self._names = {entry.name for entry in entries}
        self._offset = offset
        self._closed = False

    # -- construction -------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: PathLike,
        codec: str = "s-transform",
        scales: int = 4,
        engine: str = "fast",
        overwrite: bool = False,
        **codec_options,
    ) -> "ArchiveWriter":
        """Create a new archive at ``path`` (refuses to clobber unless told to)."""
        path = Path(path)
        if path.exists() and not overwrite:
            raise FileExistsError(f"archive {path} already exists (pass overwrite=True)")
        fh = open(path, "wb")
        fh.write(
            pack_header(
                Header(
                    version=VERSION,
                    flags=0,
                    frame_count=0,
                    index_offset=0,
                    index_size=0,
                    index_crc=0,
                )
            )
        )
        return cls(path, fh, [], HEADER_SIZE, codec, scales, engine, codec_options)

    @classmethod
    def append(
        cls,
        path: PathLike,
        codec: Optional[str] = None,
        scales: Optional[int] = None,
        engine: str = "fast",
        **codec_options,
    ) -> "ArchiveWriter":
        """Open an existing archive to add frames after the ones it holds.

        The codec configuration defaults to the last stored frame's
        (codec, scales, bank, bit depth, RLE choice), so an appended series
        stays homogeneous unless overridden explicitly.
        """
        path = Path(path)
        fh = open(path, "r+b")
        try:
            header = read_header(fh)
            fh.seek(0, 2)
            entries = read_index(fh, header, fh.tell())
        except ArchiveError:
            fh.close()
            raise
        if entries and codec is None:
            last = entries[-1]
            codec = last.codec
            scales = last.scales if scales is None else scales
            defaults: Dict = {"bit_depth": last.bit_depth}
            if last.codec == "coefficient":
                defaults["bank"] = last.bank_name
                defaults["use_rle"] = last.use_rle
            defaults.update(codec_options)
            codec_options = defaults
        codec = codec or "s-transform"
        scales = scales if scales is not None else 4
        # New payloads go after the old index, which stays valid (and the
        # header keeps pointing at it) until close() — so a crash mid-append
        # leaves the archive exactly as it was.
        fh.seek(0, 2)
        return cls(path, fh, entries, fh.tell(), codec, scales, engine, codec_options)

    # -- adding frames ------------------------------------------------------------------
    @property
    def frame_names(self) -> List[str]:
        """Names of every frame stored so far (existing + added)."""
        return [entry.name for entry in self._entries]

    def _next_name(self) -> str:
        name = f"frame_{len(self._entries):05d}"
        while name in self._names:
            name += "_"
        return name

    def add_stream(self, stream: CompressedStream, name: Optional[str] = None) -> FrameInfo:
        """Archive one already-compressed stream under ``name``."""
        if self._closed:
            raise ValueError("archive writer is closed")
        name = name if name is not None else self._next_name()
        if name in self._names:
            raise ValueError(f"archive already has a frame named {name!r}")
        payload = serialize_stream(stream)
        use_rle = any(chunk.use_rle for chunk in stream.chunks) if hasattr(
            stream, "bank_name"
        ) else False
        entry = FrameInfo(
            index=len(self._entries),
            name=name,
            codec=codec_name_for_stream(stream),
            scales=stream.scales,
            bit_depth=stream.bit_depth,
            shape=(int(stream.image_shape[0]), int(stream.image_shape[1])),
            offset=self._offset,
            length=len(payload),
            crc32=crc32(payload),
            raw_bytes=stream.original_bytes,
            bank_name=getattr(stream, "bank_name", ""),
            use_rle=use_rle,
        )
        self._fh.seek(self._offset)
        self._fh.write(payload)
        self._offset += len(payload)
        self._entries.append(entry)
        self._names.add(name)
        return entry

    def add_batch(
        self, batch: CompressedBatch, names: Optional[Sequence[str]] = None
    ) -> List[FrameInfo]:
        """Archive every stream of a :func:`compress_frames` batch."""
        if batch.codec != self.codec:
            raise ValueError(
                f"batch was compressed with codec {batch.codec!r}, "
                f"writer is configured for {self.codec!r}"
            )
        if names is not None and len(names) != len(batch.streams):
            raise ValueError(
                f"{len(names)} names for {len(batch.streams)} streams"
            )
        entries = [
            self.add_stream(stream, None if names is None else names[i])
            for i, stream in enumerate(batch.streams)
        ]
        _merge_stats(self.stats, batch.stats)
        return entries

    def add_frames(
        self,
        frames: Sequence[np.ndarray],
        names: Optional[Sequence[str]] = None,
    ) -> List[FrameInfo]:
        """Compress ``frames`` through the batched pipeline and archive them."""
        batch = compress_frames(
            frames,
            codec=self.codec,
            scales=self.scales,
            engine=self.engine,
            **self.codec_options,
        )
        return self.add_batch(batch, names)

    # -- finalisation -------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def close(self) -> None:
        """Write the index table, patch the header, and close the file."""
        if self._closed:
            return
        index = pack_index(self._entries)
        self._fh.seek(self._offset)
        self._fh.write(index)
        self._fh.truncate()
        # The new index must be on disk before the header points at it:
        # until the header patch below, an appended archive still reads as
        # its previous state.
        self._fh.flush()
        header = Header(
            version=VERSION,
            flags=0,
            frame_count=len(self._entries),
            index_offset=self._offset,
            index_size=len(index),
            index_crc=crc32(index),
        )
        self._fh.seek(0)
        self._fh.write(pack_header(header))
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "ArchiveWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Finalise even on error: every frame fully added so far stays
        # retrievable, and a half-written add_stream cannot happen because
        # the entry is only recorded after its payload is on disk.
        self.close()
