"""Byte-level definition of the archive container format (version 2).

This module is the single source of truth for the on-disk layout; the
hand-written specification in ``docs/archive_format.md`` documents the same
layout field by field and must be kept in sync.  Everything here is
plain byte bookkeeping — header and index (de)serialisation, CRC-32
checksums, and the exception taxonomy — so the writer and reader share one
implementation of the format and the format is reviewable independently of
either.

Layout summary (all integers little-endian)::

    +--------------------+  offset 0
    |  header (40 bytes) |  magic, version, frame count, index pointer, CRCs
    +--------------------+  offset 40
    |  frame payload 0   |  serialised compressed stream (see serialize.py)
    |  frame payload 1   |
    |  ...               |
    +--------------------+  offset = header.index_offset
    |  index table       |  one variable-length entry per frame
    +--------------------+  EOF

The index lives at the *end* of the file so appending never rewrites frame
payloads: an appending writer adds payloads after the old index (which stays
valid, and pointed to, until the new one is on disk) and finishes with a
fresh index plus a patched header.  A header whose ``index_offset`` is zero
marks an archive that was never finalised (the writer crashed before
``close``), which the reader reports as a clean error instead of garbage.

This module also defines the **shard-set manifest** — the small companion
file that turns N independent containers into one sharded archive set
(:mod:`repro.archive.sharding`).  The manifest stores the router kind, the
shard file names (relative to the manifest), the set-level
:class:`~repro.coding.spec.CodecSpec` as JSON and — since version 2 — a
**replica map** (per primary shard, the names of its byte-identical replica
containers, for read failover and verify-driven repair in
:mod:`repro.archive.replication`) and — since version 3 — a **placement
table** (per primary shard, the preferred worker/node id for distributed
socket-pool routing, :mod:`repro.archive.placement`), all protected by a
trailing CRC-32::

    +-----------------------------+  offset 0
    |  magic "RPRDWTM\\0" (8)      |
    |  version u16, router u8,    |
    |  flags u8, shard_count u32  |
    +-----------------------------+  offset 16
    |  spec_len u32 + spec JSON   |
    |  per shard: u16 len + name  |
    |  u16 n + range boundaries   |
    |  per shard: u16 replica     |
    |    count + u16 len + name   |  (version >= 2 only)
    |  per shard: u16 len + node  |  (version >= 3 only; "" = unplaced)
    +-----------------------------+
    |  crc32 of everything above  |
    +-----------------------------+  EOF

The replica and placement tables are parse-breaking additions for older
readers, so each rides a version bump per the rules in
``docs/archive_format.md``; version-1 manifests (no replica table) and
version-2 manifests (no placement table) are still read, as unreplicated
or unplaced sets respectively — and writers stamp the lowest version the
manifest's features need, so existing sets keep their exact bytes.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterator, List, Mapping, Tuple

from ..coding.spec import codec_wire_ids

__all__ = [
    "MAGIC",
    "VERSION",
    "HEADER_SIZE",
    "CODEC_IDS",
    "CODEC_NAMES_BY_ID",
    "KIND_IDS",
    "KINDS_BY_ID",
    "FLAG_USE_RLE",
    "FLAG_SUBBAND_MAJOR",
    "LAYOUTS",
    "LAYOUT_FRAME_MAJOR",
    "LAYOUT_SUBBAND_MAJOR",
    "ArchiveError",
    "ArchiveFormatError",
    "TruncatedArchiveError",
    "ArchiveTruncatedError",
    "ArchiveIntegrityError",
    "crc32",
    "Header",
    "FrameInfo",
    "pack_header",
    "unpack_header",
    "read_header",
    "pack_index",
    "unpack_index",
    "read_index",
    "MANIFEST_MAGIC",
    "MANIFEST_VERSION",
    "ROUTER_IDS",
    "ROUTERS_BY_ID",
    "MANIFEST_FLAG_SUBBAND_MAJOR",
    "ShardManifest",
    "pack_manifest",
    "unpack_manifest",
]

#: File magic: identifies a repro DWT archive.  The trailing byte is NUL so
#: the magic is exactly 8 bytes and never valid UTF-8 text.
MAGIC = b"RPRDWTA\x00"

#: Current container format version.  Readers reject newer versions and
#: keep reading every older one.  Version 2 added the **subband-major**
#: payload layout (per-subband entropy-coded sections behind a section
#: table, coarsest first, so a k-scale preview decodes from a strict
#: prefix of the payload bytes) — a new wire feature a version-1 reader
#: cannot parse, hence the bump.  Archives holding only frame-major
#: payloads are still written as version 1, byte-identical to before.
VERSION = 2

#: Fixed header size in bytes (the header is always at offset 0).
HEADER_SIZE = 40

#: ``<`` little-endian: magic, version, flags, frame_count, index_offset,
#: index_size, index_crc, header_crc — 8+2+2+4+8+8+4+4 = 40 bytes.
_HEADER_STRUCT = struct.Struct("<8sHHIQQII")

#: Fixed tail of an index entry, after the length-prefixed frame name:
#: payload_offset, payload_length, payload_crc, codec_id, scales, bit_depth,
#: flags, height, width, raw_bytes — 8+8+4+1+1+1+1+4+4+8 = 40 bytes
#: (followed by the length-prefixed filter-bank name).
_ENTRY_STRUCT = struct.Struct("<QQIBBBBIIQ")

class _RegistryView(Mapping):
    """Live read-through view of the codec registry's wire-id table.

    A plain dict snapshot taken at import time would go stale the moment a
    codec family is registered later; this view re-reads the registry on
    every lookup, so the writer's index packer and the reader's id checks
    always see exactly the registered families.
    """

    def __init__(self, invert: bool = False) -> None:
        self._invert = invert

    def _table(self) -> dict:
        ids = codec_wire_ids()
        return {v: k for k, v in ids.items()} if self._invert else ids

    def __getitem__(self, key):
        return self._table()[key]

    def __iter__(self) -> Iterator:
        return iter(self._table())

    def __len__(self) -> int:
        return len(self._table())

    def __eq__(self, other) -> bool:
        return self._table() == other

    def __ne__(self, other) -> bool:
        return self._table() != other

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self._table())


#: Codec identifiers stored in index entries and frame payloads — live
#: views of the codec registry (:mod:`repro.coding.spec`): the registry's
#: ``wire_id`` values *are* the on-disk ids, so registering a codec family
#: makes its id valid here immediately and no layer keeps a private table.
CODEC_IDS: Mapping[str, int] = _RegistryView()
CODEC_NAMES_BY_ID: Mapping[int, str] = _RegistryView(invert=True)

#: Subband kind identifiers used by the payload serialiser.
KIND_IDS = {"HH": 0, "HG": 1, "GH": 2, "GG": 3}
KINDS_BY_ID = {v: k for k, v in KIND_IDS.items()}

#: Index-entry flag bit 0: the coefficient codec ran zero run-length coding
#: before the Rice coder (``use_rle``).  Always clear for the s-transform.
FLAG_USE_RLE = 0x01

#: Index-entry flag bit 1: the payload uses the version-2 **subband-major**
#: layout (sectioned, coarsest-first, prefix-decodable) instead of the
#: version-1 monolithic frame-major layout.
FLAG_SUBBAND_MAJOR = 0x02

#: Payload layout names as stored in :attr:`FrameInfo.layout` and accepted
#: by the writers' ``layout=`` keyword.
LAYOUT_FRAME_MAJOR = "frame-major"
LAYOUT_SUBBAND_MAJOR = "subband-major"
LAYOUTS = (LAYOUT_FRAME_MAJOR, LAYOUT_SUBBAND_MAJOR)


class ArchiveError(Exception):
    """Base class of every archive-layer error."""


class ArchiveFormatError(ArchiveError):
    """The bytes are not a valid archive (bad magic, version, structure)."""


class TruncatedArchiveError(ArchiveFormatError):
    """The file ends before a structure the header/index declares — also
    raised when a container named by a manifest (or just magic-probed)
    disappears mid-session: bytes that should exist are gone either way."""


#: Taxonomy-ordered alias (``Archive*Error`` like its siblings).
ArchiveTruncatedError = TruncatedArchiveError


class ArchiveIntegrityError(ArchiveError):
    """A stored checksum does not match the bytes on disk."""


def crc32(data: bytes) -> int:
    """CRC-32 (IEEE 802.3, as :func:`zlib.crc32`) as an unsigned 32-bit int."""
    return zlib.crc32(data) & 0xFFFFFFFF


@dataclass(frozen=True)
class Header:
    """Parsed fixed-size file header."""

    version: int
    flags: int
    frame_count: int
    index_offset: int
    index_size: int
    index_crc: int


@dataclass(frozen=True)
class FrameInfo:
    """One frame's index entry: everything needed to retrieve it alone.

    ``offset``/``length``/``crc32`` locate and checksum the payload;
    the codec/filter/word-length configuration (``codec``, ``scales``,
    ``bit_depth``, ``bank_name``, ``use_rle``) reconstructs the exact codec
    that wrote it, so a single frame can be decoded without touching any
    other payload.
    """

    index: int
    name: str
    codec: str
    scales: int
    bit_depth: int
    shape: Tuple[int, int]
    offset: int
    length: int
    crc32: int
    raw_bytes: int
    bank_name: str = ""
    use_rle: bool = False
    layout: str = LAYOUT_FRAME_MAJOR

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / self.length if self.length else float("inf")


def pack_header(header: Header) -> bytes:
    """Serialise a header; the trailing CRC covers the preceding 36 bytes."""
    body = _HEADER_STRUCT.pack(
        MAGIC,
        header.version,
        header.flags,
        header.frame_count,
        header.index_offset,
        header.index_size,
        header.index_crc,
        0,
    )[: HEADER_SIZE - 4]
    return body + struct.pack("<I", crc32(body))


def unpack_header(data: bytes) -> Header:
    """Parse and validate the fixed-size header."""
    if len(data) < HEADER_SIZE:
        raise TruncatedArchiveError(
            f"file too short for an archive header ({len(data)} < {HEADER_SIZE} bytes)"
        )
    magic, version, flags, frame_count, index_offset, index_size, index_crc, stored_crc = (
        _HEADER_STRUCT.unpack(data[:HEADER_SIZE])
    )
    if magic != MAGIC:
        raise ArchiveFormatError(f"not an archive: bad magic {magic!r}")
    if stored_crc != crc32(data[: HEADER_SIZE - 4]):
        raise ArchiveIntegrityError("header checksum mismatch")
    if version > VERSION:
        raise ArchiveFormatError(
            f"archive format version {version} is newer than supported ({VERSION})"
        )
    return Header(
        version=version,
        flags=flags,
        frame_count=frame_count,
        index_offset=index_offset,
        index_size=index_size,
        index_crc=index_crc,
    )


def read_header(fh: BinaryIO) -> Header:
    """Read the header from an open file (positioned anywhere)."""
    fh.seek(0)
    return unpack_header(fh.read(HEADER_SIZE))


def pack_index(entries: List[FrameInfo]) -> bytes:
    """Serialise the index table (entries back to back, no trailing CRC —
    the index CRC lives in the header so the header alone authenticates
    the whole directory)."""
    parts: List[bytes] = []
    for entry in entries:
        name = entry.name.encode("utf-8")
        bank = entry.bank_name.encode("utf-8")
        if len(name) > 0xFFFF:
            raise ValueError(f"frame name too long ({len(name)} bytes)")
        if len(bank) > 0xFF:
            raise ValueError(f"filter bank name too long ({len(bank)} bytes)")
        if entry.layout not in LAYOUTS:
            raise ValueError(
                f"unknown payload layout {entry.layout!r} (expected one of {LAYOUTS})"
            )
        flags = FLAG_USE_RLE if entry.use_rle else 0
        if entry.layout == LAYOUT_SUBBAND_MAJOR:
            flags |= FLAG_SUBBAND_MAJOR
        parts.append(struct.pack("<H", len(name)))
        parts.append(name)
        parts.append(
            _ENTRY_STRUCT.pack(
                entry.offset,
                entry.length,
                entry.crc32,
                CODEC_IDS[entry.codec],
                entry.scales,
                entry.bit_depth,
                flags,
                entry.shape[0],
                entry.shape[1],
                entry.raw_bytes,
            )
        )
        parts.append(struct.pack("<B", len(bank)))
        parts.append(bank)
    return b"".join(parts)


def unpack_index(data: bytes, frame_count: int) -> List[FrameInfo]:
    """Parse ``frame_count`` index entries out of the index-table bytes."""
    entries: List[FrameInfo] = []
    pos = 0
    for index in range(frame_count):
        try:
            (name_len,) = struct.unpack_from("<H", data, pos)
            pos += 2
            name = data[pos : pos + name_len]
            if len(name) != name_len:
                raise struct.error("short name")
            pos += name_len
            fields = _ENTRY_STRUCT.unpack_from(data, pos)
            pos += _ENTRY_STRUCT.size
            (bank_len,) = struct.unpack_from("<B", data, pos)
            pos += 1
            bank = data[pos : pos + bank_len]
            if len(bank) != bank_len:
                raise struct.error("short bank name")
            pos += bank_len
        except struct.error as exc:
            raise TruncatedArchiveError(
                f"index table ends inside entry {index} of {frame_count}"
            ) from exc
        offset, length, payload_crc, codec_id, scales, bit_depth, flags, height, width, raw = fields
        if codec_id not in CODEC_NAMES_BY_ID:
            raise ArchiveFormatError(f"index entry {index} has unknown codec id {codec_id}")
        entries.append(
            FrameInfo(
                index=index,
                name=name.decode("utf-8"),
                codec=CODEC_NAMES_BY_ID[codec_id],
                scales=scales,
                bit_depth=bit_depth,
                shape=(height, width),
                offset=offset,
                length=length,
                crc32=payload_crc,
                raw_bytes=raw,
                bank_name=bank.decode("utf-8"),
                use_rle=bool(flags & FLAG_USE_RLE),
                layout=(
                    LAYOUT_SUBBAND_MAJOR
                    if flags & FLAG_SUBBAND_MAJOR
                    else LAYOUT_FRAME_MAJOR
                ),
            )
        )
    if pos != len(data):
        raise ArchiveFormatError(
            f"index table has {len(data) - pos} trailing bytes after "
            f"{frame_count} entries"
        )
    return entries


# ---------------------------------------------------------------------------
# Shard-set manifest
# ---------------------------------------------------------------------------

#: File magic of a shard-set manifest (M = manifest); distinct from the
#: container magic so a reader can tell the two apart from the first 8 bytes.
MANIFEST_MAGIC = b"RPRDWTM\x00"

#: Current manifest format version.  Readers reject newer versions; they
#: keep reading version 1 (no replica table → an unreplicated set) and
#: version 2 (no placement table → an unplaced set).
#: Version 2 added the per-shard replica map; version 3 adds the per-shard
#: **placement table** (preferred worker/node id per shard, for routing
#: distributed appends and verifies) — both parse-breaking additions,
#: hence the bumps.  Writers stamp version 3 only when a placement is
#: present (and version 2 only when needed beyond that), so sets without
#: the newer features keep their old bytes.
MANIFEST_VERSION = 3

#: Router identifiers stored in the manifest (see
#: :mod:`repro.archive.sharding` for the routing rules themselves).
ROUTER_IDS = {"hash": 0, "range": 1}
ROUTERS_BY_ID = {v: k for k, v in ROUTER_IDS.items()}

#: Fixed manifest prefix: magic, version, router_id, flags, shard_count —
#: 8+2+1+1+4 = 16 bytes (followed by the variable body and a trailing CRC).
_MANIFEST_STRUCT = struct.Struct("<8sHBBI")

#: Manifest flags bit 0: the set's shards store subband-major payloads.
#: Rides the previously-reserved flags byte (an ignorable addition — the
#: payloads self-describe — so no manifest version bump is needed).
MANIFEST_FLAG_SUBBAND_MAJOR = 0x01


@dataclass(frozen=True)
class ShardManifest:
    """Parsed shard-set manifest: everything needed to open the set.

    ``shard_names`` are container file names relative to the manifest's own
    directory; ``spec_json`` is the set-level codec configuration
    (:meth:`~repro.coding.spec.CodecSpec.to_json`), stored so every shard —
    including still-empty ones — appends with the configuration the set was
    created with.  ``boundaries`` are the range router's cutoff names
    (empty for the hash router).  ``replica_names`` is the replica map
    (version >= 2): one tuple of replica container file names per primary
    shard, empty for an unreplicated set; every copy of a shard is
    byte-identical by construction (write fan-out), which is what makes
    read failover and byte-copy repair sound.  ``node_ids`` is the
    placement table (version >= 3): one preferred worker/node id per
    primary shard (``""`` = unplaced), used by the distributed socket pool
    (:mod:`repro.archive.placement`) to route each shard's appends and
    verifies to the worker that holds — or is warm for — that shard;
    placement is advisory, so routing degrades to any-worker when a placed
    node is down.
    """

    version: int
    router: str
    shard_names: Tuple[str, ...]
    spec_json: str
    boundaries: Tuple[str, ...] = ()
    replica_names: Tuple[Tuple[str, ...], ...] = ()
    layout: str = LAYOUT_FRAME_MAJOR
    node_ids: Tuple[str, ...] = ()

    @property
    def replicas(self) -> int:
        """Replica count per shard (0 for an unreplicated set)."""
        return max((len(names) for names in self.replica_names), default=0)

    @property
    def placement(self) -> "dict[str, str]":
        """Shard file name → preferred node id (placed shards only)."""
        return {
            name: node
            for name, node in zip(self.shard_names, self.node_ids)
            if node
        }


def _pack_str(text: str, label: str) -> bytes:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise ValueError(f"{label} too long ({len(data)} bytes)")
    return struct.pack("<H", len(data)) + data


def pack_manifest(manifest: ShardManifest) -> bytes:
    """Serialise a shard-set manifest (trailing CRC covers all other bytes)."""
    if manifest.router not in ROUTER_IDS:
        raise ValueError(
            f"unknown router {manifest.router!r} (expected one of {sorted(ROUTER_IDS)})"
        )
    if manifest.router == "range" and len(manifest.boundaries) != len(manifest.shard_names) - 1:
        raise ValueError(
            f"range router over {len(manifest.shard_names)} shards needs "
            f"{len(manifest.shard_names) - 1} boundaries, got {len(manifest.boundaries)}"
        )
    if manifest.router == "hash" and manifest.boundaries:
        raise ValueError("hash router takes no boundaries")
    if manifest.replica_names:
        if manifest.version < 2:
            raise ValueError(
                "replica maps need manifest version >= 2 "
                f"(got version {manifest.version})"
            )
        if len(manifest.replica_names) != len(manifest.shard_names):
            raise ValueError(
                f"replica map covers {len(manifest.replica_names)} shards, "
                f"set has {len(manifest.shard_names)}"
            )
    if manifest.node_ids:
        if manifest.version < 3:
            raise ValueError(
                "placement tables need manifest version >= 3 "
                f"(got version {manifest.version})"
            )
        if len(manifest.node_ids) != len(manifest.shard_names):
            raise ValueError(
                f"placement table covers {len(manifest.node_ids)} shards, "
                f"set has {len(manifest.shard_names)}"
            )
    if manifest.layout not in LAYOUTS:
        raise ValueError(
            f"unknown payload layout {manifest.layout!r} (expected one of {LAYOUTS})"
        )
    spec_data = manifest.spec_json.encode("utf-8")
    flags = (
        MANIFEST_FLAG_SUBBAND_MAJOR
        if manifest.layout == LAYOUT_SUBBAND_MAJOR
        else 0
    )
    parts = [
        _MANIFEST_STRUCT.pack(
            MANIFEST_MAGIC,
            manifest.version,
            ROUTER_IDS[manifest.router],
            flags,
            len(manifest.shard_names),
        ),
        struct.pack("<I", len(spec_data)),
        spec_data,
    ]
    for name in manifest.shard_names:
        parts.append(_pack_str(name, "shard file name"))
    parts.append(struct.pack("<H", len(manifest.boundaries)))
    for boundary in manifest.boundaries:
        parts.append(_pack_str(boundary, "range boundary"))
    if manifest.version >= 2:
        # Replica map: one u16-counted name list per primary shard (all
        # zeros for an unreplicated set).
        replica_map = manifest.replica_names or ((),) * len(manifest.shard_names)
        for replicas in replica_map:
            parts.append(struct.pack("<H", len(replicas)))
            for name in replicas:
                parts.append(_pack_str(name, "replica file name"))
    if manifest.version >= 3:
        # Placement table: one u16-length-prefixed node id per primary
        # shard, in shard order ("" = unplaced; all empty for an unplaced
        # set).
        node_ids = manifest.node_ids or ("",) * len(manifest.shard_names)
        for node in node_ids:
            parts.append(_pack_str(node, "placement node id"))
    body = b"".join(parts)
    return body + struct.pack("<I", crc32(body))


def unpack_manifest(data: bytes) -> ShardManifest:
    """Parse and validate a shard-set manifest."""
    if len(data) < _MANIFEST_STRUCT.size + 4:
        raise TruncatedArchiveError(
            f"file too short for a shard-set manifest ({len(data)} bytes)"
        )
    magic, version, router_id, flags, shard_count = _MANIFEST_STRUCT.unpack_from(data, 0)
    if magic != MANIFEST_MAGIC:
        raise ArchiveFormatError(f"not a shard-set manifest: bad magic {magic!r}")
    (stored_crc,) = struct.unpack_from("<I", data, len(data) - 4)
    if stored_crc != crc32(data[:-4]):
        raise ArchiveIntegrityError("shard-set manifest checksum mismatch")
    if version > MANIFEST_VERSION:
        raise ArchiveFormatError(
            f"manifest format version {version} is newer than supported "
            f"({MANIFEST_VERSION})"
        )
    if router_id not in ROUTERS_BY_ID:
        raise ArchiveFormatError(f"manifest has unknown router id {router_id}")
    if shard_count < 1:
        raise ArchiveFormatError("manifest declares zero shards")
    pos = _MANIFEST_STRUCT.size
    end = len(data) - 4

    def take_str(label: str) -> str:
        nonlocal pos
        try:
            (length,) = struct.unpack_from("<H", data, pos)
        except struct.error as exc:
            raise TruncatedArchiveError(f"manifest ends inside {label}") from exc
        pos += 2
        raw = data[pos : pos + length]
        if len(raw) != length or pos + length > end:
            raise TruncatedArchiveError(f"manifest ends inside {label}")
        pos += length
        return raw.decode("utf-8")

    try:
        (spec_len,) = struct.unpack_from("<I", data, pos)
    except struct.error as exc:
        raise TruncatedArchiveError("manifest ends inside the spec block") from exc
    pos += 4
    spec_raw = data[pos : pos + spec_len]
    if len(spec_raw) != spec_len or pos + spec_len > end:
        raise TruncatedArchiveError("manifest ends inside the spec block")
    pos += spec_len
    shard_names = tuple(take_str(f"shard name {i}") for i in range(shard_count))
    try:
        (boundary_count,) = struct.unpack_from("<H", data, pos)
    except struct.error as exc:
        raise TruncatedArchiveError("manifest ends inside the boundary table") from exc
    pos += 2
    boundaries = tuple(take_str(f"boundary {i}") for i in range(boundary_count))
    replica_names: Tuple[Tuple[str, ...], ...] = ()
    if version >= 2:
        replica_map = []
        for shard in range(shard_count):
            try:
                (replica_count,) = struct.unpack_from("<H", data, pos)
            except struct.error as exc:
                raise TruncatedArchiveError(
                    f"manifest ends inside shard {shard}'s replica table"
                ) from exc
            pos += 2
            replica_map.append(
                tuple(
                    take_str(f"shard {shard} replica {i}")
                    for i in range(replica_count)
                )
            )
        if any(replica_map):
            replica_names = tuple(replica_map)
    node_ids: Tuple[str, ...] = ()
    if version >= 3:
        placement = tuple(
            take_str(f"shard {shard} placement node id")
            for shard in range(shard_count)
        )
        if any(placement):
            node_ids = placement
    if pos != end:
        raise ArchiveFormatError(
            f"manifest has {end - pos} trailing bytes before its checksum"
        )
    router = ROUTERS_BY_ID[router_id]
    expected = shard_count - 1 if router == "range" else 0
    if boundary_count != expected:
        raise ArchiveFormatError(
            f"{router} router over {shard_count} shards declares "
            f"{boundary_count} boundaries (expected {expected})"
        )
    return ShardManifest(
        version=version,
        router=router,
        shard_names=shard_names,
        spec_json=spec_raw.decode("utf-8"),
        boundaries=boundaries,
        replica_names=replica_names,
        layout=(
            LAYOUT_SUBBAND_MAJOR
            if flags & MANIFEST_FLAG_SUBBAND_MAJOR
            else LAYOUT_FRAME_MAJOR
        ),
        node_ids=node_ids,
    )


def read_index(fh: BinaryIO, header: Header, file_size: int) -> List[FrameInfo]:
    """Read and validate the index table an open archive's header points to."""
    if header.index_offset == 0:
        raise ArchiveFormatError(
            "archive was never finalised (writer did not close); no index table"
        )
    if header.index_offset < HEADER_SIZE:
        raise ArchiveFormatError(
            f"index offset {header.index_offset} overlaps the header"
        )
    if header.index_offset + header.index_size > file_size:
        raise TruncatedArchiveError(
            f"index table extends to byte {header.index_offset + header.index_size} "
            f"but the file has only {file_size}"
        )
    fh.seek(header.index_offset)
    data = fh.read(header.index_size)
    if len(data) != header.index_size:
        raise TruncatedArchiveError("index table could not be read in full")
    if crc32(data) != header.index_crc:
        raise ArchiveIntegrityError("index table checksum mismatch")
    entries = unpack_index(data, header.frame_count)
    for entry in entries:
        if entry.offset < HEADER_SIZE or entry.offset + entry.length > header.index_offset:
            raise ArchiveFormatError(
                f"frame {entry.index} payload [{entry.offset}, "
                f"{entry.offset + entry.length}) lies outside the payload region"
            )
    return entries
