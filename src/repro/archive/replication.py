"""Replicated shard sets: write fan-out, read failover, verify-driven repair.

PR 5's sharded sets isolate damage — a corrupted shard is *reported* while
its siblings verify and serve.  This module turns isolation into
self-healing by keeping every shard in R+1 byte-identical copies:

``ReplicatedShardSet``
    A :class:`~repro.archive.sharding.ShardedArchiveWriter` whose manifest
    (version ≥ 2) carries a replica map and whose appends **fan out**: each
    shard's streams are compressed once and written to the primary and every
    replica in the same order against the same starting bytes.  Per-frame
    compression is deterministic and containers are append-only, so the
    copies stay byte-identical — which is what makes failover and repair
    trivially correct (index entries carry across copies; repair is a byte
    copy, no re-compression that could drift).
``repair_set``
    The heal step of the ladder documented on
    :class:`~repro.archive.sharding.ShardedArchiveReader` (retry → failover
    → repair): run ``verify(strict=False)`` over every copy, then rebuild
    each damaged copy from a healthy sibling of the same shard by an atomic
    byte copy (temp file + rename, like the manifest), and re-verify what
    was rebuilt.  A shard is unrepairable only when *none* of its copies is
    healthy — exactly the condition under which reads fail too.

Read-side failover itself lives in ``ShardedArchiveReader`` (any manifest
with a replica map gets it automatically); this module owns the write
fan-out and the repair path, plus the ``python -m repro.archive repair``
wiring in :mod:`repro.archive.cli`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..coding.spec import CodecSpec, reject_spec_overrides
from .backend import StorageBackend
from .format import (
    LAYOUT_FRAME_MAJOR,
    LAYOUTS,
    MANIFEST_VERSION,
    ArchiveIntegrityError,
    FrameInfo,
    ShardManifest,
)
from .placement import normalize_placement
from .reader import VerifyReport
from .serialize import CompressedStream
from .sharding import (
    PathLike,
    ShardedArchiveReader,
    ShardedArchiveWriter,
    shard_file_names,
)
from .writer import ArchiveWriter

__all__ = [
    "shard_replica_names",
    "ReplicatedShardSet",
    "RepairReport",
    "repair_set",
]


def shard_replica_names(
    manifest_path: PathLike, shard_count: int, replicas: int
) -> Tuple[Tuple[str, ...], ...]:
    """Default replica file names: ``<stem>.shard<i>.r<j>.dwta``.

    One tuple per shard, ``replicas`` names each, mirroring
    :func:`~repro.archive.sharding.shard_file_names` for the primaries.
    """
    stem = Path(manifest_path).stem
    return tuple(
        tuple(f"{stem}.shard{i:03d}.r{j}.dwta" for j in range(replicas))
        for i in range(shard_count)
    )


class _FanOutWriter:
    """One shard's in-process write fan-out: primary plus replicas.

    Duck-types the slice of :class:`~repro.archive.writer.ArchiveWriter`
    that :class:`~repro.archive.sharding.ShardedArchiveWriter` uses
    (``add_stream``/``add_batch``/``close``), applying every mutation to
    each copy in primary-first order and reporting the primary's index
    entries.  All copies see identical streams against identical starting
    bytes, so they stay byte-identical.
    """

    def __init__(
        self,
        paths: Sequence[Path],
        spec: CodecSpec,
        layout: str = LAYOUT_FRAME_MAJOR,
    ) -> None:
        self.writers = [
            ArchiveWriter.append(path, spec=spec, layout=layout) for path in paths
        ]

    def add_stream(self, stream: CompressedStream, name: str) -> FrameInfo:
        entry: Optional[FrameInfo] = None
        for writer in self.writers:
            copy_entry = writer.add_stream(stream, name)
            if entry is None:
                entry = copy_entry
        assert entry is not None
        return entry

    def add_batch(self, batch, names: Sequence[str]) -> List[FrameInfo]:
        entries: Optional[List[FrameInfo]] = None
        for writer in self.writers:
            copy_entries = writer.add_batch(batch, names=names)
            if entries is None:
                entries = copy_entries
        return entries or []

    def close(self) -> None:
        for writer in self.writers:
            writer.close()


class ReplicatedShardSet(ShardedArchiveWriter):
    """A sharded archive set whose every shard exists in R+1 copies.

    Create with ``replicas`` ≥ 1; everything else matches
    :meth:`ShardedArchiveWriter.create`.  The replica map is stored in the
    manifest (version ≥ 2), so *any* later open — ``append`` on either
    class, ``ShardedArchiveReader``, the CLI — sees the replication:
    appends fan out, reads fail over, ``verify`` checks every copy and
    :func:`repair_set` heals from the survivors.
    """

    @classmethod
    def create(
        cls,
        path: PathLike,
        shards: int = 2,
        replicas: int = 1,
        router: str = "hash",
        boundaries: Sequence[str] = (),
        spec: Optional[CodecSpec] = None,
        overwrite: bool = False,
        workers: int = 1,
        codec: Optional[str] = None,
        scales: Optional[int] = None,
        engine: Optional[str] = None,
        layout: str = LAYOUT_FRAME_MAJOR,
        placement=None,
        **codec_options,
    ) -> "ReplicatedShardSet":
        """Create a replicated set: ``shards`` primaries × (1 + ``replicas``)
        copies, all empty finalised containers, plus the manifest (v2, or
        v3 when ``placement`` maps shards to preferred worker nodes)."""
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if layout not in LAYOUTS:
            raise ValueError(f"unknown payload layout {layout!r} (expected one of {LAYOUTS})")
        if spec is None:
            spec = CodecSpec.from_kwargs(
                codec=codec if codec is not None else "s-transform",
                scales=scales if scales is not None else 4,
                engine=engine,
                **codec_options,
            )
        else:
            reject_spec_overrides(codec_options, codec=codec, scales=scales, engine=engine)
        path = Path(path)
        if path.exists() and not overwrite:
            raise FileExistsError(
                f"shard-set manifest {path} already exists (pass overwrite=True)"
            )
        shard_names = tuple(shard_file_names(path, shards))
        node_ids = normalize_placement(placement, shard_names)
        manifest = ShardManifest(
            version=MANIFEST_VERSION if node_ids else 2,
            router=router,
            shard_names=shard_names,
            spec_json=spec.to_json(),
            boundaries=tuple(boundaries),
            replica_names=shard_replica_names(path, shards, replicas),
            layout=layout,
            node_ids=node_ids,
        )
        return cls._init_set(path, manifest, spec, overwrite, workers)

    # -- fan-out plumbing ---------------------------------------------------------------
    @property
    def replicas(self) -> int:
        """Replicas per shard (beyond the primary)."""
        return self.manifest.replicas

    def _copy_paths(self, shard: int) -> List[Path]:
        replica_map = self.manifest.replica_names or ((),) * self.shard_count
        return [
            self.shard_paths[shard],
            *(self.path.parent / name for name in replica_map[shard]),
        ]

    def _shard_write_paths(self, shard: int) -> List[str]:
        """Pooled appends write every copy (primary first)."""
        return [str(path) for path in self._copy_paths(shard)]

    def _writer(self, shard: int) -> _FanOutWriter:
        """In-process appends (``add_stream``, serial ``append_batch``) go
        through a fan-out writer so streamed ingest replicates too."""
        if shard not in self._writers:
            self._writers[shard] = _FanOutWriter(
                self._copy_paths(shard), self.spec, layout=self.manifest.layout
            )
        return self._writers[shard]


# ---------------------------------------------------------------------------
# Repair
# ---------------------------------------------------------------------------

@dataclass
class RepairReport:
    """Outcome of one :func:`repair_set` pass.

    ``repaired`` maps each rebuilt copy file name to the healthy sibling it
    was byte-copied from; ``unrepairable`` lists copies that stayed damaged
    (their shard has no healthy copy left); ``shard_status`` maps each
    primary shard file name to ``"ok"`` (was never damaged), ``"repaired"``
    (damaged copies rebuilt and re-verified) or ``"damaged"``
    (unrepairable).  ``verify`` holds the report of the pre-repair
    ``verify(strict=False)`` pass that drove the repair.
    """

    repaired: Dict[str, str] = field(default_factory=dict)
    unrepairable: List[str] = field(default_factory=list)
    shard_status: Dict[str, str] = field(default_factory=dict)
    verify: Optional[VerifyReport] = None

    @property
    def ok(self) -> bool:
        """Whether every shard is healthy after the pass."""
        return not self.unrepairable

    def to_dict(self) -> Dict:
        return {
            "repaired": dict(self.repaired),
            "unrepairable": list(self.unrepairable),
            "shard_status": dict(self.shard_status),
            "ok": self.ok,
        }


def _atomic_byte_copy(source: Path, target: Path) -> None:
    """Replace ``target`` with ``source``'s bytes, atomically.

    Same discipline as the manifest writer: temp file in the target's
    directory, fsync, one :func:`os.replace` — a crash mid-repair leaves
    the damaged copy untouched (and still repairable), never half-healed.
    """
    temp = target.with_name(target.name + ".tmp")
    data = source.read_bytes()
    with open(temp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(temp, target)


def repair_set(
    path: PathLike,
    deep: bool = False,
    workers: int = 1,
    engine: Optional[str] = None,
    verify_checksums: bool = True,
    backend_factory: Optional[Callable[[Path], StorageBackend]] = None,
) -> RepairReport:
    """Detect and heal damaged shard copies from their healthy siblings.

    Runs ``verify(strict=False)`` over every copy of every shard (the
    detect step), then for each damaged copy — corrupted, truncated, or
    stale/diverged — byte-copies a healthy sibling of the same shard over
    it (primary preferred as the source) and re-verifies the rebuilt copy.
    Copies are byte-identical by construction, so the rebuilt file is
    byte-identical to what the damaged copy held before the damage.

    A shard with *no* healthy copy cannot be healed; its damaged copies are
    reported ``unrepairable`` and the shard stays ``"damaged"``.  Exposed
    as ``python -m repro.archive repair`` (see ``docs/operations.md`` for
    the detect → repair → re-verify runbook).
    """
    path = Path(path)
    with ShardedArchiveReader(
        path,
        engine=engine,
        verify_checksums=verify_checksums,
        backend_factory=backend_factory,
    ) as reader:
        report = reader.verify(deep=deep, workers=workers, strict=False)
        manifest = reader.manifest
    result = RepairReport(verify=report)
    failures: Dict[str, str] = report["failures"]
    replica_map = manifest.replica_names or ((),) * len(manifest.shard_names)
    for shard, primary in enumerate(manifest.shard_names):
        copies = [primary, *replica_map[shard]]
        damaged = [name for name in copies if name in failures]
        if not damaged:
            result.shard_status[primary] = "ok"
            continue
        healthy = [name for name in copies if name not in failures]
        if not healthy:
            result.unrepairable.extend(damaged)
            result.shard_status[primary] = "damaged"
            continue
        source = healthy[0]  # primary-first order: primary preferred
        for name in damaged:
            _atomic_byte_copy(path.parent / source, path.parent / name)
            result.repaired[name] = source
        result.shard_status[primary] = "repaired"
    if result.repaired:
        # Re-verify what was rebuilt (direct file reads — the heal must be
        # judged on the real bytes, not through an injected-fault backend).
        with ShardedArchiveReader(
            path, engine=engine, verify_checksums=verify_checksums
        ) as reader:
            post = reader.verify(deep=deep, workers=workers, strict=False)
        for name in result.repaired:
            if name in post["failures"]:  # pragma: no cover - defensive
                raise ArchiveIntegrityError(
                    f"repaired copy {name} failed re-verification: "
                    f"{post['failures'][name]}"
                )
    return result
