"""Storage backends: where an archive container's bytes live.

The writer and reader used to call ``open(path, ...)`` directly, welding the
container format to the local filesystem.  This module puts a small seam
between the two: a :class:`StorageBackend` names one container and hands out
binary file objects for it, and :class:`~repro.archive.writer.ArchiveWriter`
/ :class:`~repro.archive.reader.ArchiveReader` perform exactly the same
seeks, reads and writes against whatever the backend returns.  The bytes a
backend stores are byte-identical across backends — the container format
(:mod:`repro.archive.format`) never sees the backend, only a file object —
so archives move freely between them.

Two backends ship:

``FileBackend``
    One file on the local filesystem; what every path-based call site gets
    (paths are resolved through :func:`resolve_backend`, so the historical
    ``ArchiveWriter.create("x.dwta")`` API is unchanged, file for file and
    byte for byte).
``MemoryBackend``
    An in-process byte buffer with file semantics: writes persist across
    open/close cycles of the *backend object*, which makes it the natural
    scratch target for tests and for staging an archive before uploading it
    somewhere a future backend (object store, remote block device) would
    address.

Backends hand out ordinary binary file objects, so a new backend only has
to implement the four small methods of :class:`StorageBackend`; everything
above the seam (append crash-safety, random access, sharding, streaming
ingest) works unchanged.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import BinaryIO, Union

__all__ = [
    "StorageBackend",
    "FileBackend",
    "MemoryBackend",
    "resolve_backend",
]


class StorageBackend:
    """One archive container's byte store.

    A backend *names* a container and opens binary streams over it; it holds
    no format knowledge.  The returned objects must support ``read``,
    ``write``, ``seek``, ``tell``, ``flush``, ``truncate`` and ``close`` —
    the full set the writer and reader use.
    """

    def exists(self) -> bool:
        """Whether the container currently holds any bytes."""
        raise NotImplementedError

    def create(self) -> BinaryIO:
        """Open the container for writing from scratch (truncating)."""
        raise NotImplementedError

    def open_read(self) -> BinaryIO:
        """Open the container read-only."""
        raise NotImplementedError

    def open_modify(self) -> BinaryIO:
        """Open the existing container for in-place read/write (append)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable location, used in error messages and ``repr``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()!r})"


class FileBackend(StorageBackend):
    """A container stored as one file on the local filesystem."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def create(self) -> BinaryIO:
        return open(self.path, "wb")

    def open_read(self) -> BinaryIO:
        return open(self.path, "rb")

    def open_modify(self) -> BinaryIO:
        return open(self.path, "r+b")

    def describe(self) -> str:
        return str(self.path)


class _MemoryFile(io.BytesIO):
    """A BytesIO whose contents persist back into its backend on close/flush."""

    def __init__(self, backend: "MemoryBackend", initial: bytes) -> None:
        super().__init__(initial)
        self._backend = backend

    def flush(self) -> None:
        super().flush()
        self._backend._blob = self.getvalue()

    def close(self) -> None:
        if not self.closed:
            self._backend._blob = self.getvalue()
        super().close()


class MemoryBackend(StorageBackend):
    """A container stored in an in-process byte buffer.

    Open/close cycles see each other's writes (the buffer lives on the
    backend object), so the writer → reader hand-off works exactly as it
    does on disk; the stored bytes are exposed as :meth:`getvalue` and are
    byte-identical to what :class:`FileBackend` would have written.
    """

    def __init__(self, initial: bytes = b"", name: str = "<memory>") -> None:
        self._blob = bytes(initial)
        self.name = name

    def exists(self) -> bool:
        return bool(self._blob)

    def create(self) -> BinaryIO:
        self._blob = b""
        return _MemoryFile(self, b"")

    def open_read(self) -> BinaryIO:
        if not self._blob:
            raise FileNotFoundError(f"memory container {self.name!r} is empty")
        return io.BytesIO(self._blob)

    def open_modify(self) -> BinaryIO:
        if not self._blob:
            raise FileNotFoundError(f"memory container {self.name!r} is empty")
        return _MemoryFile(self, self._blob)

    def describe(self) -> str:
        return self.name

    def getvalue(self) -> bytes:
        """The container's current bytes (what a file would hold on disk)."""
        return self._blob


def resolve_backend(target: Union[str, Path, StorageBackend]) -> StorageBackend:
    """Coerce a writer/reader target into a backend (paths → files)."""
    if isinstance(target, StorageBackend):
        return target
    return FileBackend(target)
