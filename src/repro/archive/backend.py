"""Storage backends: where an archive container's bytes live.

The writer and reader used to call ``open(path, ...)`` directly, welding the
container format to the local filesystem.  This module puts a small seam
between the two: a :class:`StorageBackend` names one container and hands out
binary file objects for it, and :class:`~repro.archive.writer.ArchiveWriter`
/ :class:`~repro.archive.reader.ArchiveReader` perform exactly the same
seeks, reads and writes against whatever the backend returns.  The bytes a
backend stores are byte-identical across backends — the container format
(:mod:`repro.archive.format`) never sees the backend, only a file object —
so archives move freely between them.

Two backends ship:

``FileBackend``
    One file on the local filesystem; what every path-based call site gets
    (paths are resolved through :func:`resolve_backend`, so the historical
    ``ArchiveWriter.create("x.dwta")`` API is unchanged, file for file and
    byte for byte).
``MemoryBackend``
    An in-process byte buffer with file semantics: writes persist across
    open/close cycles of the *backend object*, which makes it the natural
    scratch target for tests and for staging an archive before uploading it
    somewhere a future backend (object store, remote block device) would
    address.

Backends hand out ordinary binary file objects, so a new backend only has
to implement the four small methods of :class:`StorageBackend`; everything
above the seam (append crash-safety, random access, sharding, streaming
ingest) works unchanged.

This module also carries the two reusable **robustness primitives** the
replication layer (:mod:`repro.archive.replication`) is built on:

:class:`RetryPolicy`
    Bounded attempts with exponential backoff for *transient* storage
    faults.  The sleep and the backoff schedule are injectable, so tests
    assert the exact delays instead of actually waiting.  Retrying is for
    errors that may pass (an ``OSError`` from a flaky device); persistent
    damage (checksum mismatches) is never retried — that is what read
    failover and repair are for.
:class:`FaultInjectionBackend`
    Wraps any backend and executes a deterministic **fault plan** against
    its reads: raise on the Nth read (once, or K times then succeed —
    the fail-then-succeed shape retries must absorb), flip a bit at a
    byte offset (bit rot), or present the container as truncated (a torn
    write).  :func:`seeded_fault_plan` derives a reproducible random plan
    from an integer seed, so every failure mode the chaos suite exercises
    replays byte for byte from the seed alone.
"""

from __future__ import annotations

import errno
import io
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Callable, List, Optional, Sequence, Tuple, Union

try:  # pragma: no cover - mmap ships with CPython everywhere we run
    import mmap as _mmap
except ImportError:  # pragma: no cover - exotic platforms only
    _mmap = None

__all__ = [
    "StorageBackend",
    "FileBackend",
    "MemoryBackend",
    "resolve_backend",
    "RetryPolicy",
    "Fault",
    "FaultInjectionBackend",
    "seeded_fault_plan",
]


class StorageBackend:
    """One archive container's byte store.

    A backend *names* a container and opens binary streams over it; it holds
    no format knowledge.  The returned objects must support ``read``,
    ``write``, ``seek``, ``tell``, ``flush``, ``truncate`` and ``close`` —
    the full set the writer and reader use.
    """

    def exists(self) -> bool:
        """Whether the container currently holds any bytes."""
        raise NotImplementedError

    def create(self) -> BinaryIO:
        """Open the container for writing from scratch (truncating)."""
        raise NotImplementedError

    def open_read(self) -> BinaryIO:
        """Open the container read-only."""
        raise NotImplementedError

    def open_modify(self) -> BinaryIO:
        """Open the existing container for in-place read/write (append)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable location, used in error messages and ``repr``."""
        raise NotImplementedError

    def read_range(self, offset: int, length: int) -> Optional[memoryview]:
        """Zero-copy view of ``length`` container bytes at ``offset``.

        Returns ``None`` when the backend has no zero-copy path — the caller
        must then fall back to a seek + ``read`` on an open handle.  A
        returned view may be *shorter* than ``length`` when the container
        ends early (the same short-read semantics ``read`` has), so callers
        check the view's length exactly as they check a read's.  The view
        stays valid until :meth:`release`; backends that cannot honour that
        for a given request simply return ``None``.
        """
        return None

    def release(self) -> None:
        """Drop any cached zero-copy resources (mmap).  Always safe; views
        already handed out keep their backing store alive until collected."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()!r})"


class FileBackend(StorageBackend):
    """A container stored as one file on the local filesystem.

    Beyond the stream interface, file containers support zero-copy payload
    reads: :meth:`read_range` memory-maps the file once (lazily, read-only)
    and serves requests as memoryview slices of the mapping — no
    intermediate ``bytes`` object, no seek/read syscall pair.  The mapping
    is remapped when the file has grown (an appended archive read through
    the same backend) and falls back to a single ``os.pread`` when mapping
    is unavailable, so the method never returns ``None`` on a readable
    file.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fd: Optional[int] = None
        self._map = None
        self._map_size = 0

    def exists(self) -> bool:
        return self.path.exists()

    def create(self) -> BinaryIO:
        return open(self.path, "wb")

    def open_read(self) -> BinaryIO:
        return open(self.path, "rb")

    def open_modify(self) -> BinaryIO:
        return open(self.path, "r+b")

    def describe(self) -> str:
        return str(self.path)

    # -- zero-copy reads -----------------------------------------------------------------
    def _remap(self, size: int) -> None:
        """(Re)map the file at its current ``size``; degrade to no map."""
        old = self._map
        self._map = None
        self._map_size = 0
        if _mmap is not None and size > 0:
            try:
                self._map = _mmap.mmap(self._fd, size, access=_mmap.ACCESS_READ)
                self._map_size = size
            except (OSError, ValueError):
                self._map = None
        if old is not None:
            try:
                old.close()
            except BufferError:
                # Views of the old mapping are still exported; the mapping
                # stays alive until they are collected, then unmaps itself.
                pass

    def read_range(self, offset: int, length: int) -> Optional[memoryview]:
        if offset < 0 or length < 0:
            raise ValueError(f"invalid range ({offset}, {length})")
        try:
            if self._fd is None:
                self._fd = os.open(self.path, os.O_RDONLY)
            end = offset + length
            if self._map is None or self._map_size < end:
                size = os.fstat(self._fd).st_size
                if self._map is None or self._map_size < min(size, end):
                    self._remap(size)
            if self._map is not None:
                return memoryview(self._map)[offset:end]
            # Mapping unavailable (empty file, platform refusal): one
            # positioned read, still handle-free for the caller.
            return memoryview(os.pread(self._fd, length, offset))
        except OSError:
            return None

    def release(self) -> None:
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:  # exported views pin the mapping; see _remap
                pass
            self._map = None
            self._map_size = 0
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


class _MemoryFile(io.BytesIO):
    """A BytesIO whose contents persist back into its backend on close/flush."""

    def __init__(self, backend: "MemoryBackend", initial: bytes) -> None:
        super().__init__(initial)
        self._backend = backend

    def flush(self) -> None:
        super().flush()
        self._backend._blob = self.getvalue()

    def close(self) -> None:
        if not self.closed:
            self._backend._blob = self.getvalue()
        super().close()


class MemoryBackend(StorageBackend):
    """A container stored in an in-process byte buffer.

    Open/close cycles see each other's writes (the buffer lives on the
    backend object), so the writer → reader hand-off works exactly as it
    does on disk; the stored bytes are exposed as :meth:`getvalue` and are
    byte-identical to what :class:`FileBackend` would have written.
    """

    def __init__(self, initial: bytes = b"", name: str = "<memory>") -> None:
        self._blob = bytes(initial)
        self.name = name

    def exists(self) -> bool:
        return bool(self._blob)

    def create(self) -> BinaryIO:
        self._blob = b""
        return _MemoryFile(self, b"")

    def open_read(self) -> BinaryIO:
        if not self._blob:
            raise FileNotFoundError(f"memory container {self.name!r} is empty")
        return io.BytesIO(self._blob)

    def open_modify(self) -> BinaryIO:
        if not self._blob:
            raise FileNotFoundError(f"memory container {self.name!r} is empty")
        return _MemoryFile(self, self._blob)

    def describe(self) -> str:
        return self.name

    def read_range(self, offset: int, length: int) -> Optional[memoryview]:
        """A slice of the buffer itself — memory containers are zero-copy
        by construction (short when the buffer ends early, like a read)."""
        if offset < 0 or length < 0:
            raise ValueError(f"invalid range ({offset}, {length})")
        return memoryview(self._blob)[offset : offset + length]

    def getvalue(self) -> bytes:
        """The container's current bytes (what a file would hold on disk)."""
        return self._blob


def resolve_backend(target: Union[str, Path, StorageBackend]) -> StorageBackend:
    """Coerce a writer/reader target into a backend (paths → files)."""
    if isinstance(target, StorageBackend):
        return target
    return FileBackend(target)


# ---------------------------------------------------------------------------
# Retry policy: bounded attempts + exponential backoff for transient faults
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient storage faults.

    ``attempts`` is the total number of tries (1 = no retrying).  Attempt
    ``i`` (0-based) that fails with one of ``retry_on`` sleeps
    ``min(base_delay * factor**i, max_delay)`` seconds before the next try;
    exceptions outside ``retry_on`` — and anything in ``give_up_on``, which
    wins — propagate immediately.  ``sleep`` and ``clock`` are injectable so
    tests run the full schedule without waiting: a recording fake proves
    the exact delays.

    Only *transient* errors belong in ``retry_on`` (the default is
    ``OSError``: flaky device, interrupted syscall).  A checksum mismatch
    is persistent — retrying re-reads the same rotten bytes — so integrity
    errors are deliberately not retried; the replicated read path handles
    those by failing over to another copy instead.
    """

    attempts: int = 3
    base_delay: float = 0.01
    factor: float = 2.0
    max_delay: float = 1.0
    retry_on: Tuple[type, ...] = (OSError,)
    #: Never retried even when matched by ``retry_on`` (a missing file will
    #: not appear by waiting; failover should move on immediately).
    give_up_on: Tuple[type, ...] = (FileNotFoundError,)
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single-attempt policy (retrying disabled)."""
        return cls(attempts=1)

    def delays(self) -> List[float]:
        """The backoff schedule: sleep after failed attempt i (< attempts-1)."""
        return [
            min(self.base_delay * self.factor**i, self.max_delay)
            for i in range(self.attempts - 1)
        ]

    def run(self, fn: Callable, on_retry: Optional[Callable[[BaseException], None]] = None):
        """Call ``fn()`` under this policy; returns its result.

        ``on_retry(exc)`` is invoked once per absorbed failure (before the
        backoff sleep), so callers can count how many transient faults the
        policy hid — the readers' ``retries`` counters feed from it.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.attempts):
            try:
                return fn()
            except self.give_up_on:
                raise
            except self.retry_on as exc:
                last = exc
                if attempt == self.attempts - 1:
                    raise
                if on_retry is not None:
                    on_retry(exc)
                self.sleep(min(self.base_delay * self.factor**attempt, self.max_delay))
        raise last  # pragma: no cover - unreachable (loop always returns/raises)


# ---------------------------------------------------------------------------
# Fault injection: deterministic storage failures for robustness tests
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fault:
    """One deterministic storage fault in a :class:`FaultInjectionBackend` plan.

    ``kind`` selects the failure mode:

    ``"io-error"``
        The backend's ``at_read``-th ``read()`` call (0-based, counted
        across every handle the backend hands out) raises ``OSError``
        (EIO); with ``times`` > 1 the next ``times - 1`` reads fail too.
        ``times=1`` is *raise-on-Nth-read* (a retry succeeds);
        ``times=k`` is *fail-then-succeed* after k attempts.
    ``"bit-flip"``
        Every read whose window covers absolute byte ``offset`` returns
        that byte XOR-ed with ``mask`` — bit rot the checksums must catch.
        The underlying store is never modified.
    ``"truncate"``
        The container appears to end at byte ``offset`` (a torn write):
        reads clamp there and end-relative seeks land there.
    """

    kind: str
    at_read: int = 0
    times: int = 1
    offset: int = 0
    mask: int = 0x01

    _KINDS = ("io-error", "bit-flip", "truncate")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (expected one of {self._KINDS})")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.kind == "bit-flip" and not 1 <= self.mask <= 0xFF:
            raise ValueError(f"bit-flip mask must be a byte value, got {self.mask}")


def seeded_fault_plan(
    seed: int,
    file_size: int,
    faults: int = 1,
    kinds: Sequence[str] = Fault._KINDS,
    read_window: int = 8,
) -> List[Fault]:
    """Derive a reproducible fault plan from an integer seed.

    The same ``(seed, file_size, faults, kinds, read_window)`` always yields
    the same plan (``random.Random`` is seeded, nothing global), so a chaos
    run is replayed exactly from its seed.  Offsets land anywhere in
    ``[0, file_size)`` except the final bytes for ``truncate`` (a zero-byte
    file would be trivial); ``io-error`` faults fire within the first
    ``read_window`` reads, where every reader's open + first access lives.
    """
    if file_size < 2:
        raise ValueError(f"file_size must be >= 2, got {file_size}")
    rng = random.Random(seed)
    plan: List[Fault] = []
    for _ in range(faults):
        kind = rng.choice(list(kinds))
        if kind == "io-error":
            plan.append(
                Fault(kind=kind, at_read=rng.randrange(read_window), times=rng.randint(1, 2))
            )
        elif kind == "bit-flip":
            plan.append(
                Fault(kind=kind, offset=rng.randrange(file_size), mask=1 << rng.randrange(8))
            )
        else:  # truncate somewhere strictly inside the file
            plan.append(Fault(kind=kind, offset=rng.randrange(1, file_size)))
    return plan


class _FaultyFile:
    """File-object proxy that applies its backend's fault plan to reads.

    Tracks the logical position itself so a ``truncate`` fault can clamp
    both reads and end-relative seeks without touching the real store.
    """

    def __init__(self, inner: BinaryIO, backend: "FaultInjectionBackend") -> None:
        self._inner = inner
        self._backend = backend
        self._pos = 0

    # -- size under truncation faults ----------------------------------------------------
    def _effective_size(self) -> int:
        here = self._inner.tell()
        self._inner.seek(0, 2)
        size = self._inner.tell()
        self._inner.seek(here)
        for fault in self._backend.faults:
            if fault.kind == "truncate":
                size = min(size, fault.offset)
        return size

    # -- the faulted operations ----------------------------------------------------------
    def read(self, size: int = -1) -> bytes:
        self._backend._count_read()
        limit = max(0, self._effective_size() - self._pos)
        want = limit if size is None or size < 0 else min(size, limit)
        self._inner.seek(self._pos)
        data = self._inner.read(want)
        data = self._backend._flip_bits(data, self._pos)
        self._pos += len(data)
        return data

    def seek(self, offset: int, whence: int = 0) -> int:
        if whence == 0:
            self._pos = offset
        elif whence == 1:
            self._pos += offset
        elif whence == 2:
            self._pos = self._effective_size() + offset
        else:  # pragma: no cover - defensive
            raise ValueError(f"invalid whence {whence}")
        return self._pos

    def tell(self) -> int:
        return self._pos

    # -- plumbing ------------------------------------------------------------------------
    def write(self, data: bytes) -> int:
        self._inner.seek(self._pos)
        written = self._inner.write(data)
        self._pos += written
        return written

    def flush(self) -> None:
        self._inner.flush()

    def truncate(self, size: Optional[int] = None) -> int:
        return self._inner.truncate(self._pos if size is None else size)

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def __enter__(self) -> "_FaultyFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class FaultInjectionBackend(StorageBackend):
    """Wraps a backend and executes a deterministic fault plan on its reads.

    The plan is a sequence of :class:`Fault` objects (hand-built, or derived
    from a seed via :func:`seeded_fault_plan`).  Reads are counted across
    every handle this backend opens, so "the Nth read" is well-defined for a
    fixed access pattern and a test replays identically every run.  The
    ``reads`` counter and the ``fired`` log expose what actually happened,
    so tests assert the plan executed rather than trusting it did.

    This backend deliberately offers **no** zero-copy path (``read_range``
    stays the base class's ``None``): readers fall back to counted
    ``read()`` calls, so every fault in the plan still fires regardless of
    the reader's ``zero_copy`` setting.
    """

    def __init__(self, inner: StorageBackend, faults: Sequence[Fault] = ()) -> None:
        self.inner = inner
        self.faults: Tuple[Fault, ...] = tuple(faults)
        #: Total ``read()`` calls observed across all handles.
        self.reads = 0
        #: ``(read_index, fault)`` pairs for every fault that actually fired.
        self.fired: List[Tuple[int, Fault]] = []

    # -- fault machinery -----------------------------------------------------------------
    def _count_read(self) -> None:
        index = self.reads
        self.reads += 1
        for fault in self.faults:
            if fault.kind == "io-error" and fault.at_read <= index < fault.at_read + fault.times:
                self.fired.append((index, fault))
                raise OSError(errno.EIO, f"injected I/O error on read {index}")

    def _flip_bits(self, data: bytes, start: int) -> bytes:
        flipped = None
        for fault in self.faults:
            if fault.kind == "bit-flip" and start <= fault.offset < start + len(data):
                if flipped is None:
                    flipped = bytearray(data)
                flipped[fault.offset - start] ^= fault.mask
                self.fired.append((self.reads - 1, fault))
        return bytes(flipped) if flipped is not None else data

    # -- StorageBackend interface --------------------------------------------------------
    def exists(self) -> bool:
        return self.inner.exists()

    def create(self) -> BinaryIO:
        return _FaultyFile(self.inner.create(), self)

    def open_read(self) -> BinaryIO:
        return _FaultyFile(self.inner.open_read(), self)

    def open_modify(self) -> BinaryIO:
        return _FaultyFile(self.inner.open_modify(), self)

    def describe(self) -> str:
        return f"{self.inner.describe()} [fault-injected]"
