"""Frame-payload (de)serialisation: compressed streams <-> archive bytes.

A frame payload is the self-describing byte form of one compressed stream
(:class:`~repro.coding.codec.CompressedImage` or
:class:`~repro.coding.s_transform.CompressedSImage`)::

    +------------------+
    | meta_len  (u32)  |  little-endian, like every container structure
    +------------------+
    | meta block       |  bit-packed through repro.coding.bitstream
    +------------------+  (fields MSB-first, all widths byte multiples)
    | chunk bytes      |  entropy-coded subband payloads, concatenated in
    +------------------+  the order the meta block declares

The meta block is the serialised form of the frame's
:class:`~repro.coding.spec.CodecSpec` (codec wire id from the registry,
depth, geometry, bit depth, filter-bank and word-length metadata) followed
by per-subband chunk descriptors (kind, scale, shape, byte lengths); the
chunk bytes are the codecs' entropy-coded payloads verbatim.  Deserialising
a payload therefore needs nothing outside the payload itself, which is what
makes single-frame random access possible:
:func:`deserialize_stream_with_spec` returns both the stream and the
reconstructed spec, and :func:`frame_spec` rebuilds the spec from an index
entry alone, without reading the payload.

Since container version 2 a payload may instead use the **subband-major**
layout, built for progressive retrieval::

    +----------------------------+
    | sentinel 0xFFFFFFFF (u32)  |  impossible as a v1 meta_len
    | payload_version (u8) = 2   |
    | meta_len (u32)             |  9 bytes total ("<IBI")
    +----------------------------+
    | meta block                 |  v1 fields + per-section CRC-32s
    +----------------------------+
    | meta CRC-32 (u32 LE)       |  the section table is self-verifying
    +----------------------------+
    | section bytes              |  one independently entropy-coded
    +----------------------------+  section per subband, coarsest first

Sections are ordered by ``(-scale, kind_id)`` — the scale-S approximation
(HH) first, then each scale's details coarsest to finest — so the bytes
needed to reconstruct a preview at scale ``k`` are a **strict prefix** of
the payload: the 9-byte head, the meta block and its CRC, and every
section with ``scale > k`` (plus HH).  :func:`parse_section_table` reads
the table alone, :func:`prefix_length` prices a preview in bytes, and
:func:`deserialize_prefix` reconstructs a partial stream from exactly
those bytes, each section verified against its own CRC-32 so a prefix is
trustworthy without the container-level whole-payload checksum.

Codec identity is validated through the codec registry
(:func:`repro.coding.spec.get_family`); registry errors are wrapped in
:class:`ArchiveFormatError` with the frame context, so a payload naming an
unregistered codec reads as a format error, not a loose ``ValueError``.

For the coefficient codec the stored word-length metadata (word length,
accumulator width, per-scale integer bits) is checked against the plan the
current code derives for the same bank and depth
(:func:`repro.fixedpoint.wordlength.plan_word_lengths`); a mismatch means
the stream was written by an incompatible word-length analysis and decoding
would produce garbage, so it raises :class:`ArchiveFormatError` instead.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from dataclasses import replace as _dc_replace
from typing import List, Tuple, Union

from ..coding.bitstream import BitReader, BitWriter
from ..coding.codec import CompressedImage, SubbandChunk
from ..coding.s_transform import CompressedSImage
from ..coding.spec import CodecSpec, UnknownCodecError, family_for_stream, get_family
from ..filters.catalog import get_bank
from ..fixedpoint.wordlength import plan_word_lengths
from .format import (
    CODEC_NAMES_BY_ID,
    KIND_IDS,
    KINDS_BY_ID,
    LAYOUT_FRAME_MAJOR,
    LAYOUT_SUBBAND_MAJOR,
    LAYOUTS,
    ArchiveFormatError,
    ArchiveIntegrityError,
    FrameInfo,
    TruncatedArchiveError,
    crc32,
)

__all__ = [
    "CompressedStream",
    "Payload",
    "PAYLOAD_SENTINEL",
    "PAYLOAD_VERSION",
    "PAYLOAD_HEAD_SIZE",
    "PayloadSection",
    "SectionTable",
    "codec_name_for_stream",
    "frame_spec",
    "spec_for_stream",
    "payload_spec",
    "payload_layout",
    "is_subband_major",
    "serialize_stream",
    "deserialize_stream",
    "deserialize_stream_with_spec",
    "parse_section_table",
    "sections_to_stream",
    "deserialize_prefix",
    "prefix_length",
    "materialize_stream",
]

CompressedStream = Union[CompressedImage, CompressedSImage]

#: Payload bytes as stored (``bytes``) or as a zero-copy ``memoryview`` of
#: the backend's mapping.  Deserialising a view keeps the chunk payloads as
#: sub-views — no intermediate copies — which is what the readers'
#: ``zero_copy`` path relies on; the decoders consume either form.
Payload = Union[bytes, memoryview]

#: First four bytes of a subband-major payload.  A version-1 payload starts
#: with its little-endian ``meta_len``, which is tens of bytes in practice
#: and could never be ``0xFFFFFFFF`` (the meta block would have to be 4 GiB
#: and exceed every container bound), so the sentinel tells the two layouts
#: apart from the payload's own first word.
PAYLOAD_SENTINEL = 0xFFFFFFFF

#: Version byte of the sectioned payload layout (matches the container
#: version that introduced it).  Readers reject newer payload versions.
PAYLOAD_VERSION = 2

#: Subband-major payload head: sentinel u32, payload version u8, meta_len
#: u32 — 9 bytes, no padding under ``<``.
_PAYLOAD_HEAD_STRUCT = struct.Struct("<IBI")
PAYLOAD_HEAD_SIZE = _PAYLOAD_HEAD_STRUCT.size


@dataclass(frozen=True)
class PayloadSection:
    """One subband's entry in a subband-major payload's section table.

    ``offset`` is the section's absolute byte offset within the payload;
    the section's bytes are the chunk's entropy-coded literal payload
    immediately followed by its run payload (empty unless ``use_rle``), and
    ``crc32`` covers exactly those ``length`` bytes, so any section — hence
    any prefix — verifies on its own.
    """

    index: int
    kind: str
    scale: int
    shape: Tuple[int, int]
    use_rle: bool
    payload_len: int
    run_len: int
    crc32: int
    offset: int

    @property
    def length(self) -> int:
        return self.payload_len + self.run_len


@dataclass(frozen=True)
class SectionTable:
    """Parsed section table of a subband-major payload.

    Holds everything the meta block declares — codec configuration plus the
    ordered section descriptors — without touching a single section byte,
    so it can be built from the payload's (head + meta) prefix alone.
    ``body_offset`` is where section bytes begin
    (``PAYLOAD_HEAD_SIZE + meta_len + 4``); sections are stored coarsest
    first (descending scale, the HH approximation leading its scale), which
    is what makes every preview a strict prefix.
    """

    codec: str
    scales: int
    image_shape: Tuple[int, int]
    bit_depth: int
    bank_name: str
    sections: Tuple[PayloadSection, ...]
    body_offset: int

    @property
    def use_rle(self) -> bool:
        return any(section.use_rle for section in self.sections)

    @property
    def payload_length(self) -> int:
        """Total payload size in bytes (head + meta + CRC + every section)."""
        return self.body_offset + sum(s.length for s in self.sections)

    def spec(self) -> CodecSpec:
        """The :class:`CodecSpec` the table describes."""
        if self.bank_name:
            return CodecSpec(
                codec=self.codec,
                scales=self.scales,
                bit_depth=self.bit_depth,
                bank=self.bank_name,
                use_rle=self.use_rle,
            )
        return CodecSpec(codec=self.codec, scales=self.scales, bit_depth=self.bit_depth)

    def _check_scale(self, at_scale: int) -> None:
        if not 0 <= at_scale <= self.scales:
            raise ValueError(
                f"at_scale must be within [0, {self.scales}], got {at_scale}"
            )

    def prefix_sections(self, at_scale: int) -> Tuple[PayloadSection, ...]:
        """The sections a scale-``at_scale`` preview needs — always a
        leading run of :attr:`sections` thanks to the coarsest-first order:
        the HH approximation plus every detail section coarser than
        ``at_scale``.  ``at_scale=0`` is the full section list."""
        self._check_scale(at_scale)
        return tuple(
            s for s in self.sections if s.kind == "HH" or s.scale > at_scale
        )

    def prefix_length(self, at_scale: int) -> int:
        """Payload bytes a scale-``at_scale`` preview reads: the head, the
        meta block + CRC, and the prefix sections — nothing else."""
        return self.body_offset + sum(
            s.length for s in self.prefix_sections(at_scale)
        )


def codec_name_for_stream(stream: CompressedStream) -> str:
    """Pipeline codec name (registry name) that produced ``stream``."""
    return family_for_stream(stream).name


def spec_for_stream(stream: CompressedStream) -> CodecSpec:
    """The :class:`CodecSpec` that reproduces ``stream``'s configuration."""
    return CodecSpec.for_stream(stream)


def frame_spec(entry: FrameInfo) -> CodecSpec:
    """Rebuild a frame's :class:`CodecSpec` from its index entry alone.

    This is what makes spec-aware random access cheap: the index carries
    the whole configuration, so no payload bytes are touched.  Registry
    errors (an index naming an unregistered codec) surface as
    :class:`ArchiveFormatError` with the frame's context.
    """
    try:
        return CodecSpec(
            codec=entry.codec,
            scales=entry.scales,
            bit_depth=entry.bit_depth,
            bank=entry.bank_name or None,
            use_rle=entry.use_rle if entry.bank_name else None,
        )
    except UnknownCodecError as exc:
        raise ArchiveFormatError(
            f"frame {entry.name!r}: index entry references an unregistered "
            f"codec ({exc})"
        ) from exc


def _write_ascii(writer: BitWriter, text: str, length_bits: int = 8) -> None:
    data = text.encode("utf-8")
    if len(data) >= (1 << length_bits):
        raise ValueError(f"string {text!r} too long for a {length_bits}-bit length")
    writer.write_uint(len(data), length_bits)
    for byte in data:
        writer.write_uint(byte, 8)


def _read_ascii(reader: BitReader, length_bits: int = 8) -> str:
    length = reader.read_uint(length_bits)
    return bytes(reader.read_uint(8) for _ in range(length)).decode("utf-8")


def _normalized_sections(stream: CompressedStream):
    """Every chunk as ``(kind, scale, shape, use_rle, payload, run_payload)``
    in section order — descending scale, :data:`KIND_IDS` order within a
    scale, so the HH approximation leads.  Chunk *storage* order in the
    in-memory streams is irrelevant to decode (lookup is by kind/scale), so
    re-sorting here loses nothing and buys the prefix property."""
    if isinstance(stream, CompressedImage):
        rows = [
            (c.kind, c.scale, c.shape, c.use_rle, c.payload, c.run_payload)
            for c in stream.chunks
        ]
    else:
        rows = [
            (kind, scale, stream.shapes[(kind, scale)], False, payload, b"")
            for (kind, scale), payload in stream.chunks.items()
        ]
    return sorted(rows, key=lambda row: (-row[1], KIND_IDS[row[0]]))


def _serialize_subband_major(stream: CompressedStream, spec: CodecSpec) -> bytes:
    family = spec.family
    writer = BitWriter()
    writer.write_uint(family.wire_id, 8)
    writer.write_uint(spec.scales, 8)
    writer.write_uint(stream.image_shape[0], 32)
    writer.write_uint(stream.image_shape[1], 32)
    writer.write_uint(spec.bit_depth, 8)
    sections = _normalized_sections(stream)
    section_bytes: List[bytes] = []
    if family.uses_bank:
        _write_ascii(writer, spec.bank_name)
        plan = plan_word_lengths(get_bank(spec.bank_name), spec.scales)
        writer.write_uint(plan.data_formats[1].word_length, 8)
        writer.write_uint(plan.accumulator_bits, 8)
        for bits in plan.integer_bits():
            writer.write_uint(bits, 8)
    writer.write_uint(len(sections), 16)
    for kind, scale, shape, use_rle, payload, run_payload in sections:
        writer.write_uint(KIND_IDS[kind], 8)
        writer.write_uint(scale, 8)
        writer.write_uint(shape[0], 32)
        writer.write_uint(shape[1], 32)
        if family.uses_bank:
            writer.write_uint(1 if use_rle else 0, 8)
        writer.write_uint(len(payload), 32)
        if family.uses_bank:
            writer.write_uint(len(run_payload), 32)
        # Per-section CRC over the section's bytes exactly as stored
        # (literal payload then run payload) — a prefix read verifies each
        # section it takes without the container-level payload checksum.
        writer.write_uint(zlib.crc32(run_payload, zlib.crc32(payload)) & 0xFFFFFFFF, 32)
        section_bytes.append(payload)
        if run_payload:
            section_bytes.append(run_payload)
    meta = writer.getvalue()
    head = _PAYLOAD_HEAD_STRUCT.pack(PAYLOAD_SENTINEL, PAYLOAD_VERSION, len(meta))
    return b"".join([head, meta, struct.pack("<I", crc32(meta)), *section_bytes])


def serialize_stream(
    stream: CompressedStream, layout: str = LAYOUT_FRAME_MAJOR
) -> bytes:
    """Serialise a compressed stream into one archive frame payload.

    The header fields are written from the stream's :class:`CodecSpec`
    (codec wire id, depth, geometry, bit depth, bank), so the payload
    carries the spec and :func:`deserialize_stream_with_spec` recovers it.
    ``layout`` selects the wire form: the version-1 ``"frame-major"``
    monolith (the default, byte-identical to what every earlier writer
    produced) or the version-2 ``"subband-major"`` sectioned layout that
    supports strict-prefix preview decode.
    """
    spec = spec_for_stream(stream)
    if layout not in LAYOUTS:
        raise ValueError(
            f"unknown payload layout {layout!r} (expected one of {LAYOUTS})"
        )
    if layout == LAYOUT_SUBBAND_MAJOR:
        return _serialize_subband_major(stream, spec)
    family = spec.family
    writer = BitWriter()
    writer.write_uint(family.wire_id, 8)
    writer.write_uint(spec.scales, 8)
    writer.write_uint(stream.image_shape[0], 32)
    writer.write_uint(stream.image_shape[1], 32)
    writer.write_uint(spec.bit_depth, 8)
    chunk_bytes: List[bytes] = []
    if family.uses_bank:
        _write_ascii(writer, spec.bank_name)
        plan = plan_word_lengths(get_bank(spec.bank_name), spec.scales)
        writer.write_uint(plan.data_formats[1].word_length, 8)
        writer.write_uint(plan.accumulator_bits, 8)
        for bits in plan.integer_bits():
            writer.write_uint(bits, 8)
        writer.write_uint(len(stream.chunks), 16)
        for chunk in stream.chunks:
            writer.write_uint(KIND_IDS[chunk.kind], 8)
            writer.write_uint(chunk.scale, 8)
            writer.write_uint(chunk.shape[0], 32)
            writer.write_uint(chunk.shape[1], 32)
            writer.write_uint(1 if chunk.use_rle else 0, 8)
            writer.write_uint(len(chunk.payload), 32)
            writer.write_uint(len(chunk.run_payload), 32)
            chunk_bytes.append(chunk.payload)
            chunk_bytes.append(chunk.run_payload)
    else:
        writer.write_uint(len(stream.chunks), 16)
        for (kind, scale), payload in stream.chunks.items():
            shape = stream.shapes[(kind, scale)]
            writer.write_uint(KIND_IDS[kind], 8)
            writer.write_uint(scale, 8)
            writer.write_uint(shape[0], 32)
            writer.write_uint(shape[1], 32)
            writer.write_uint(len(payload), 32)
            chunk_bytes.append(payload)
    meta = writer.getvalue()
    return b"".join([struct.pack("<I", len(meta)), meta, *chunk_bytes])


def _check_plan(reader: BitReader, bank_name: str, scales: int) -> None:
    """Verify stored word-length metadata against the freshly derived plan."""
    try:
        bank = get_bank(bank_name)
    except (KeyError, ValueError) as exc:
        raise ArchiveFormatError(
            f"frame payload references unknown filter bank {bank_name!r}"
        ) from exc
    plan = plan_word_lengths(bank, scales)
    word_length = reader.read_uint(8)
    accumulator_bits = reader.read_uint(8)
    integer_bits = [reader.read_uint(8) for _ in range(scales)]
    if (
        word_length != plan.data_formats[1].word_length
        or accumulator_bits != plan.accumulator_bits
        or integer_bits != plan.integer_bits()
    ):
        raise ArchiveFormatError(
            f"stored word-length plan ({word_length}-bit words, "
            f"accumulator {accumulator_bits}, integer bits {integer_bits}) does "
            f"not match the plan derived for bank {bank_name!r} at {scales} "
            "scales; the stream was written by an incompatible analysis"
        )


def is_subband_major(payload: Payload) -> bool:
    """Whether the payload bytes use the version-2 subband-major layout.

    Decided from the payload's first word alone (see
    :data:`PAYLOAD_SENTINEL`), so it works on any prefix of at least four
    bytes; shorter inputs are nobody's payload and report ``False``.
    """
    if len(payload) < 4:
        return False
    (word,) = struct.unpack_from("<I", payload, 0)
    return word == PAYLOAD_SENTINEL


def payload_layout(payload: Payload) -> str:
    """The layout name (:data:`~repro.archive.format.LAYOUTS`) of a payload."""
    return LAYOUT_SUBBAND_MAJOR if is_subband_major(payload) else LAYOUT_FRAME_MAJOR


def parse_section_table(payload: Payload, check_plan: bool = True) -> SectionTable:
    """Parse a subband-major payload's head and section table.

    Touches only the payload's ``(head + meta + meta CRC)`` prefix — never
    a section byte — so it accepts a prefix read as readily as a whole
    payload.  A payload cut *inside* the table raises
    :class:`TruncatedArchiveError` naming the section descriptor the bytes
    end in; a complete table whose CRC disagrees raises
    :class:`ArchiveIntegrityError`.  ``check_plan=False`` skips the
    word-length plan validation for triage callers (:func:`payload_spec`).
    """
    if len(payload) < PAYLOAD_HEAD_SIZE:
        raise TruncatedArchiveError(
            f"frame payload ends inside its {PAYLOAD_HEAD_SIZE}-byte "
            "subband-major head"
        )
    sentinel, version, meta_len = _PAYLOAD_HEAD_STRUCT.unpack_from(payload, 0)
    if sentinel != PAYLOAD_SENTINEL:
        raise ArchiveFormatError("payload is not subband-major (no sentinel)")
    if version != PAYLOAD_VERSION:
        raise ArchiveFormatError(
            f"subband-major payload version {version} is not supported "
            f"(expected {PAYLOAD_VERSION})"
        )
    meta = payload[PAYLOAD_HEAD_SIZE : PAYLOAD_HEAD_SIZE + meta_len]
    meta_complete = len(meta) == meta_len
    body_offset = PAYLOAD_HEAD_SIZE + meta_len + 4
    if meta_complete:
        if len(payload) < body_offset:
            raise TruncatedArchiveError(
                "frame payload ends inside its section-table checksum"
            )
        (stored_crc,) = struct.unpack_from("<I", payload, PAYLOAD_HEAD_SIZE + meta_len)
        if stored_crc != crc32(bytes(meta)):
            raise ArchiveIntegrityError("section table checksum mismatch")
    reader = BitReader(meta)
    # On a truncated meta block the parse below runs against the partial
    # bytes on purpose: the EOF then names the exact descriptor the payload
    # ends in, which is the error the truncation sweep asserts.
    try:
        codec_id = reader.read_uint(8)
        if codec_id not in CODEC_NAMES_BY_ID:
            raise ArchiveFormatError(f"frame payload has unknown codec id {codec_id}")
        family = get_family(CODEC_NAMES_BY_ID[codec_id])
        scales = reader.read_uint(8)
        shape = (reader.read_uint(32), reader.read_uint(32))
        bit_depth = reader.read_uint(8)
        bank_name = ""
        if family.uses_bank:
            bank_name = _read_ascii(reader)
            if check_plan:
                _check_plan(reader, bank_name, scales)
            else:
                for _ in range(2 + scales):
                    reader.read_uint(8)
        count = reader.read_uint(16)
    except (EOFError, KeyError) as exc:
        if not meta_complete:
            raise TruncatedArchiveError(
                "frame payload ends inside its section-table prologue"
            ) from exc
        raise ArchiveFormatError("frame payload meta block is malformed") from exc
    sections: List[PayloadSection] = []
    offset = body_offset
    for index in range(count):
        try:
            kind = KINDS_BY_ID[reader.read_uint(8)]
            scale = reader.read_uint(8)
            section_shape = (reader.read_uint(32), reader.read_uint(32))
            use_rle = bool(reader.read_uint(8)) if family.uses_bank else False
            payload_len = reader.read_uint(32)
            run_len = reader.read_uint(32) if family.uses_bank else 0
            section_crc = reader.read_uint(32)
        except (EOFError, KeyError) as exc:
            if not meta_complete:
                raise TruncatedArchiveError(
                    f"frame payload ends inside section descriptor {index} "
                    f"of {count}"
                ) from exc
            raise ArchiveFormatError(
                f"frame payload meta block is malformed at section "
                f"descriptor {index} of {count}"
            ) from exc
        sections.append(
            PayloadSection(
                index=index,
                kind=kind,
                scale=scale,
                shape=section_shape,
                use_rle=use_rle,
                payload_len=payload_len,
                run_len=run_len,
                crc32=section_crc,
                offset=offset,
            )
        )
        offset += payload_len + run_len
    if not meta_complete:
        # Every descriptor parsed out of fewer bytes than declared: the cut
        # falls between the last descriptor and the declared end.
        raise TruncatedArchiveError(
            f"frame payload ends inside its section table after descriptor "
            f"{count - 1} of {count}"
            if count
            else "frame payload ends inside its section table"
        )
    order = [(-s.scale, KIND_IDS[s.kind]) for s in sections]
    if order != sorted(order):
        raise ArchiveFormatError(
            "subband-major sections are not coarsest-first; the prefix "
            "property does not hold for this payload"
        )
    return SectionTable(
        codec=family.name,
        scales=scales,
        image_shape=shape,
        bit_depth=bit_depth,
        bank_name=bank_name,
        sections=tuple(sections),
        body_offset=body_offset,
    )


def sections_to_stream(
    table: SectionTable,
    body: Payload,
    at_scale: int = 0,
    verify: bool = True,
) -> CompressedStream:
    """Build a (possibly partial) stream from section bytes.

    ``body`` holds the payload's bytes from :attr:`SectionTable.body_offset`
    on — at least through the last section a scale-``at_scale`` preview
    needs — as stored, so slicing stays zero-copy on ``memoryview`` input.
    With ``verify`` each consumed section is checked against its own CRC,
    making a prefix read trustworthy without the whole-payload checksum.
    """
    needed = table.prefix_sections(at_scale)
    if table.bank_name:
        stream: CompressedStream = CompressedImage(
            bank_name=table.bank_name,
            scales=table.scales,
            image_shape=table.image_shape,
            bit_depth=table.bit_depth,
        )
    else:
        stream = CompressedSImage(
            scales=table.scales,
            image_shape=table.image_shape,
            bit_depth=table.bit_depth,
        )
    for section in needed:
        start = section.offset - table.body_offset
        data = body[start : start + section.length]
        if len(data) != section.length:
            raise TruncatedArchiveError(
                f"frame payload ends inside section {section.index} "
                f"({section.kind}@{section.scale}, {section.length} bytes)"
            )
        if verify and zlib.crc32(data) & 0xFFFFFFFF != section.crc32:
            raise ArchiveIntegrityError(
                f"section {section.index} ({section.kind}@{section.scale}) "
                "checksum mismatch"
            )
        literal = data[: section.payload_len]
        runs = data[section.payload_len :]
        if isinstance(stream, CompressedImage):
            stream.chunks.append(
                SubbandChunk(
                    kind=section.kind,
                    scale=section.scale,
                    shape=section.shape,
                    use_rle=section.use_rle,
                    payload=literal,
                    run_payload=runs,
                )
            )
        else:
            stream.chunks[(section.kind, section.scale)] = literal
            stream.shapes[(section.kind, section.scale)] = section.shape
    return stream


def deserialize_prefix(
    payload: Payload, at_scale: int
) -> Tuple[CompressedStream, CodecSpec]:
    """Reconstruct the partial stream a scale-``at_scale`` preview needs.

    ``payload`` may be the whole payload or any prefix of at least
    ``prefix_length(payload, at_scale)`` bytes; only those bytes are
    touched (zero-copy on ``memoryview`` input) and each consumed section
    is verified against its per-section CRC.  The returned stream holds
    the HH approximation plus the detail subbands coarser than
    ``at_scale``; the spec is the full frame's (derived from the complete
    section table, which a prefix always carries whole).
    """
    table = parse_section_table(payload)
    stream = sections_to_stream(
        table, payload[table.body_offset :], at_scale=at_scale
    )
    return stream, table.spec()


def prefix_length(payload: Payload, at_scale: int) -> int:
    """Bytes of ``payload`` a scale-``at_scale`` preview decode touches."""
    return parse_section_table(payload, check_plan=False).prefix_length(at_scale)


def deserialize_stream_with_spec(payload: Payload) -> Tuple[CompressedStream, CodecSpec]:
    """Reconstruct one frame payload's stream *and* its :class:`CodecSpec`.

    ``payload`` may be ``bytes`` or a ``memoryview``; a view is never
    copied — the returned stream's chunk payloads are sub-views of it, so
    they remain valid only as long as the view's backing store does
    (the reader holds its mapping open until :meth:`ArchiveReader.close`).
    Both layouts are accepted: version-1 frame-major payloads parse exactly
    as before, and subband-major payloads are recognised by their sentinel
    and parsed through the section table (every section CRC-verified).
    """
    if is_subband_major(payload):
        table = parse_section_table(payload)
        if table.payload_length != len(payload):
            if table.payload_length > len(payload):
                raise TruncatedArchiveError(
                    f"frame payload declares {table.payload_length} bytes of "
                    f"sections but holds {len(payload)}"
                )
            raise ArchiveFormatError(
                f"frame payload has {len(payload) - table.payload_length} "
                "trailing bytes after the declared sections"
            )
        stream = sections_to_stream(table, payload[table.body_offset :])
        return stream, table.spec()
    return _deserialize_frame_major(payload)


def _deserialize_frame_major(payload: Payload) -> Tuple[CompressedStream, CodecSpec]:
    """The version-1 monolithic parse (unchanged from container v1)."""
    if len(payload) < 4:
        raise ArchiveFormatError("frame payload shorter than its length prefix")
    (meta_len,) = struct.unpack_from("<I", payload, 0)
    meta = payload[4 : 4 + meta_len]
    if len(meta) != meta_len:
        raise ArchiveFormatError(
            f"frame payload declares a {meta_len}-byte meta block but only "
            f"{len(meta)} bytes follow"
        )
    reader = BitReader(meta)
    try:
        codec_id = reader.read_uint(8)
        if codec_id not in CODEC_NAMES_BY_ID:
            raise ArchiveFormatError(f"frame payload has unknown codec id {codec_id}")
        # The name came from inverting the registry, so this lookup cannot
        # miss; it just resolves the id to its family entry.
        family = get_family(CODEC_NAMES_BY_ID[codec_id])
        scales = reader.read_uint(8)
        shape = (reader.read_uint(32), reader.read_uint(32))
        bit_depth = reader.read_uint(8)
        position = 4 + meta_len

        def take(length: int) -> Payload:
            # Slicing keeps the input's form: bytes stay bytes, views stay
            # views (zero-copy into the backend's mapping).
            nonlocal position
            data = payload[position : position + length]
            if len(data) != length:
                raise ArchiveFormatError(
                    f"frame payload ends inside a {length}-byte chunk"
                )
            position += length
            return data

        if family.uses_bank:
            bank_name = _read_ascii(reader)
            _check_plan(reader, bank_name, scales)
            stream: CompressedStream = CompressedImage(
                bank_name=bank_name,
                scales=scales,
                image_shape=shape,
                bit_depth=bit_depth,
            )
            for _ in range(reader.read_uint(16)):
                kind = KINDS_BY_ID[reader.read_uint(8)]
                chunk_scale = reader.read_uint(8)
                chunk_shape = (reader.read_uint(32), reader.read_uint(32))
                use_rle = bool(reader.read_uint(8))
                payload_len = reader.read_uint(32)
                run_len = reader.read_uint(32)
                stream.chunks.append(
                    SubbandChunk(
                        kind=kind,
                        scale=chunk_scale,
                        shape=chunk_shape,
                        use_rle=use_rle,
                        payload=take(payload_len),
                        run_payload=take(run_len),
                    )
                )
        else:
            stream = CompressedSImage(
                scales=scales, image_shape=shape, bit_depth=bit_depth
            )
            for _ in range(reader.read_uint(16)):
                kind = KINDS_BY_ID[reader.read_uint(8)]
                chunk_scale = reader.read_uint(8)
                chunk_shape = (reader.read_uint(32), reader.read_uint(32))
                payload_len = reader.read_uint(32)
                stream.chunks[(kind, chunk_scale)] = take(payload_len)
                stream.shapes[(kind, chunk_scale)] = chunk_shape
    except (EOFError, KeyError) as exc:
        raise ArchiveFormatError("frame payload meta block is malformed") from exc
    if position != len(payload):
        raise ArchiveFormatError(
            f"frame payload has {len(payload) - position} trailing bytes after "
            "the declared chunks"
        )
    try:
        spec = spec_for_stream(stream)
    except (ValueError, TypeError) as exc:
        raise ArchiveFormatError(
            f"frame payload metadata does not form a valid codec "
            f"configuration ({exc})"
        ) from exc
    return stream, spec


def materialize_stream(stream: CompressedStream) -> CompressedStream:
    """Ensure a stream's chunk payloads are self-contained ``bytes``.

    A stream deserialised from a zero-copy view holds sub-views of the
    reader's storage mapping: fast to decode, but not picklable (process
    pools) and only valid while the mapping lives.  This copies any such
    views into ``bytes`` **in place** and returns the stream; byte-backed
    streams pass through untouched, so it is free on the copying path.
    """
    if isinstance(stream, CompressedImage):
        stream.chunks[:] = [
            chunk
            if isinstance(chunk.payload, bytes) and isinstance(chunk.run_payload, bytes)
            else _dc_replace(
                chunk,
                payload=bytes(chunk.payload),
                run_payload=bytes(chunk.run_payload),
            )
            for chunk in stream.chunks
        ]
    else:
        for key, data in stream.chunks.items():
            if not isinstance(data, bytes):
                stream.chunks[key] = bytes(data)
    return stream


def deserialize_stream(payload: Payload) -> CompressedStream:
    """Reconstruct the compressed stream from one archive frame payload."""
    stream, _ = deserialize_stream_with_spec(payload)
    return stream


def payload_spec(payload: Payload) -> CodecSpec:
    """Recover just the :class:`CodecSpec` from a payload's meta block.

    A triage entry point: answers "what configuration wrote these bytes"
    by parsing only the meta block — chunk *descriptors* are read for the
    RLE policy but the entropy-coded chunk bytes are never touched or
    validated, so this works even when the payload's chunk region is
    truncated (the common damage mode the sharded verify isolates).  On a
    subband-major payload the section table answers directly (word-length
    plan validation skipped, same as the v1 triage path); a payload cut
    inside the table raises :class:`TruncatedArchiveError` naming the
    section descriptor, never a raw struct/EOF error.
    """
    if is_subband_major(payload):
        return parse_section_table(payload, check_plan=False).spec()
    if len(payload) < 4:
        raise ArchiveFormatError("frame payload shorter than its length prefix")
    (meta_len,) = struct.unpack_from("<I", payload, 0)
    meta = payload[4 : 4 + meta_len]
    if len(meta) != meta_len:
        raise ArchiveFormatError(
            f"frame payload declares a {meta_len}-byte meta block but only "
            f"{len(meta)} bytes follow"
        )
    reader = BitReader(meta)
    try:
        codec_id = reader.read_uint(8)
        if codec_id not in CODEC_NAMES_BY_ID:
            raise ArchiveFormatError(f"frame payload has unknown codec id {codec_id}")
        family = get_family(CODEC_NAMES_BY_ID[codec_id])
        scales = reader.read_uint(8)
        reader.read_uint(32), reader.read_uint(32)  # geometry, not part of the spec
        bit_depth = reader.read_uint(8)
        if not family.uses_bank:
            return CodecSpec(codec=family.name, scales=scales, bit_depth=bit_depth)
        bank_name = _read_ascii(reader)
        # Skip the stored word-length plan (word length, accumulator,
        # per-scale integer bits) — triage must not require it to validate.
        for _ in range(2 + scales):
            reader.read_uint(8)
        use_rle = False
        for _ in range(reader.read_uint(16)):
            reader.read_uint(8), reader.read_uint(8)  # kind, scale
            reader.read_uint(32), reader.read_uint(32)  # shape
            use_rle = bool(reader.read_uint(8)) or use_rle
            reader.read_uint(32), reader.read_uint(32)  # payload/run lengths
        return CodecSpec(
            codec=family.name,
            scales=scales,
            bit_depth=bit_depth,
            bank=bank_name,
            use_rle=use_rle,
        )
    except (EOFError, KeyError) as exc:
        raise ArchiveFormatError("frame payload meta block is malformed") from exc
    except (ValueError, TypeError) as exc:
        raise ArchiveFormatError(
            f"frame payload metadata does not form a valid codec configuration ({exc})"
        ) from exc
