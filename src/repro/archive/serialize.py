"""Frame-payload (de)serialisation: compressed streams <-> archive bytes.

A frame payload is the self-describing byte form of one compressed stream
(:class:`~repro.coding.codec.CompressedImage` or
:class:`~repro.coding.s_transform.CompressedSImage`)::

    +------------------+
    | meta_len  (u32)  |  little-endian, like every container structure
    +------------------+
    | meta block       |  bit-packed through repro.coding.bitstream
    +------------------+  (fields MSB-first, all widths byte multiples)
    | chunk bytes      |  entropy-coded subband payloads, concatenated in
    +------------------+  the order the meta block declares

The meta block records codec, geometry, filter-bank and word-length
metadata, and per-subband chunk descriptors (kind, scale, shape, byte
lengths); the chunk bytes are the codecs' entropy-coded payloads verbatim.
Deserialising a payload therefore needs nothing outside the payload itself,
which is what makes single-frame random access possible.

For the coefficient codec the stored word-length metadata (word length,
accumulator width, per-scale integer bits) is checked against the plan the
current code derives for the same bank and depth
(:func:`repro.fixedpoint.wordlength.plan_word_lengths`); a mismatch means
the stream was written by an incompatible word-length analysis and decoding
would produce garbage, so it raises :class:`ArchiveFormatError` instead.
"""

from __future__ import annotations

import struct
from typing import List, Union

from ..coding.bitstream import BitReader, BitWriter
from ..coding.codec import CompressedImage, SubbandChunk
from ..coding.s_transform import CompressedSImage
from ..filters.catalog import get_bank
from ..fixedpoint.wordlength import plan_word_lengths
from .format import (
    CODEC_IDS,
    CODEC_NAMES_BY_ID,
    KIND_IDS,
    KINDS_BY_ID,
    ArchiveFormatError,
)

__all__ = ["CompressedStream", "codec_name_for_stream", "serialize_stream", "deserialize_stream"]

CompressedStream = Union[CompressedImage, CompressedSImage]


def codec_name_for_stream(stream: CompressedStream) -> str:
    """Pipeline codec name (``CODEC_NAMES``) that produced ``stream``."""
    if isinstance(stream, CompressedImage):
        return "coefficient"
    if isinstance(stream, CompressedSImage):
        return "s-transform"
    raise TypeError(f"not a compressed stream: {type(stream).__name__}")


def _write_ascii(writer: BitWriter, text: str, length_bits: int = 8) -> None:
    data = text.encode("utf-8")
    if len(data) >= (1 << length_bits):
        raise ValueError(f"string {text!r} too long for a {length_bits}-bit length")
    writer.write_uint(len(data), length_bits)
    for byte in data:
        writer.write_uint(byte, 8)


def _read_ascii(reader: BitReader, length_bits: int = 8) -> str:
    length = reader.read_uint(length_bits)
    return bytes(reader.read_uint(8) for _ in range(length)).decode("utf-8")


def serialize_stream(stream: CompressedStream) -> bytes:
    """Serialise a compressed stream into one archive frame payload."""
    codec = codec_name_for_stream(stream)
    writer = BitWriter()
    writer.write_uint(CODEC_IDS[codec], 8)
    writer.write_uint(stream.scales, 8)
    writer.write_uint(stream.image_shape[0], 32)
    writer.write_uint(stream.image_shape[1], 32)
    writer.write_uint(stream.bit_depth, 8)
    chunk_bytes: List[bytes] = []
    if codec == "coefficient":
        _write_ascii(writer, stream.bank_name)
        plan = plan_word_lengths(get_bank(stream.bank_name), stream.scales)
        writer.write_uint(plan.data_formats[1].word_length, 8)
        writer.write_uint(plan.accumulator_bits, 8)
        for bits in plan.integer_bits():
            writer.write_uint(bits, 8)
        writer.write_uint(len(stream.chunks), 16)
        for chunk in stream.chunks:
            writer.write_uint(KIND_IDS[chunk.kind], 8)
            writer.write_uint(chunk.scale, 8)
            writer.write_uint(chunk.shape[0], 32)
            writer.write_uint(chunk.shape[1], 32)
            writer.write_uint(1 if chunk.use_rle else 0, 8)
            writer.write_uint(len(chunk.payload), 32)
            writer.write_uint(len(chunk.run_payload), 32)
            chunk_bytes.append(chunk.payload)
            chunk_bytes.append(chunk.run_payload)
    else:
        writer.write_uint(len(stream.chunks), 16)
        for (kind, scale), payload in stream.chunks.items():
            shape = stream.shapes[(kind, scale)]
            writer.write_uint(KIND_IDS[kind], 8)
            writer.write_uint(scale, 8)
            writer.write_uint(shape[0], 32)
            writer.write_uint(shape[1], 32)
            writer.write_uint(len(payload), 32)
            chunk_bytes.append(payload)
    meta = writer.getvalue()
    return b"".join([struct.pack("<I", len(meta)), meta, *chunk_bytes])


def _check_plan(reader: BitReader, bank_name: str, scales: int) -> None:
    """Verify stored word-length metadata against the freshly derived plan."""
    try:
        bank = get_bank(bank_name)
    except (KeyError, ValueError) as exc:
        raise ArchiveFormatError(
            f"frame payload references unknown filter bank {bank_name!r}"
        ) from exc
    plan = plan_word_lengths(bank, scales)
    word_length = reader.read_uint(8)
    accumulator_bits = reader.read_uint(8)
    integer_bits = [reader.read_uint(8) for _ in range(scales)]
    if (
        word_length != plan.data_formats[1].word_length
        or accumulator_bits != plan.accumulator_bits
        or integer_bits != plan.integer_bits()
    ):
        raise ArchiveFormatError(
            f"stored word-length plan ({word_length}-bit words, "
            f"accumulator {accumulator_bits}, integer bits {integer_bits}) does "
            f"not match the plan derived for bank {bank_name!r} at {scales} "
            "scales; the stream was written by an incompatible analysis"
        )


def deserialize_stream(payload: bytes) -> CompressedStream:
    """Reconstruct the compressed stream from one archive frame payload."""
    if len(payload) < 4:
        raise ArchiveFormatError("frame payload shorter than its length prefix")
    (meta_len,) = struct.unpack_from("<I", payload, 0)
    meta = payload[4 : 4 + meta_len]
    if len(meta) != meta_len:
        raise ArchiveFormatError(
            f"frame payload declares a {meta_len}-byte meta block but only "
            f"{len(meta)} bytes follow"
        )
    reader = BitReader(meta)
    try:
        codec_id = reader.read_uint(8)
        if codec_id not in CODEC_NAMES_BY_ID:
            raise ArchiveFormatError(f"frame payload has unknown codec id {codec_id}")
        codec = CODEC_NAMES_BY_ID[codec_id]
        scales = reader.read_uint(8)
        shape = (reader.read_uint(32), reader.read_uint(32))
        bit_depth = reader.read_uint(8)
        position = 4 + meta_len

        def take(length: int) -> bytes:
            nonlocal position
            data = payload[position : position + length]
            if len(data) != length:
                raise ArchiveFormatError(
                    f"frame payload ends inside a {length}-byte chunk"
                )
            position += length
            return data

        if codec == "coefficient":
            bank_name = _read_ascii(reader)
            _check_plan(reader, bank_name, scales)
            stream: CompressedStream = CompressedImage(
                bank_name=bank_name,
                scales=scales,
                image_shape=shape,
                bit_depth=bit_depth,
            )
            for _ in range(reader.read_uint(16)):
                kind = KINDS_BY_ID[reader.read_uint(8)]
                chunk_scale = reader.read_uint(8)
                chunk_shape = (reader.read_uint(32), reader.read_uint(32))
                use_rle = bool(reader.read_uint(8))
                payload_len = reader.read_uint(32)
                run_len = reader.read_uint(32)
                stream.chunks.append(
                    SubbandChunk(
                        kind=kind,
                        scale=chunk_scale,
                        shape=chunk_shape,
                        use_rle=use_rle,
                        payload=take(payload_len),
                        run_payload=take(run_len),
                    )
                )
        else:
            stream = CompressedSImage(
                scales=scales, image_shape=shape, bit_depth=bit_depth
            )
            for _ in range(reader.read_uint(16)):
                kind = KINDS_BY_ID[reader.read_uint(8)]
                chunk_scale = reader.read_uint(8)
                chunk_shape = (reader.read_uint(32), reader.read_uint(32))
                payload_len = reader.read_uint(32)
                stream.chunks[(kind, chunk_scale)] = take(payload_len)
                stream.shapes[(kind, chunk_scale)] = chunk_shape
    except (EOFError, KeyError) as exc:
        raise ArchiveFormatError("frame payload meta block is malformed") from exc
    if position != len(payload):
        raise ArchiveFormatError(
            f"frame payload has {len(payload) - position} trailing bytes after "
            "the declared chunks"
        )
    return stream
