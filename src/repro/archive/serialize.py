"""Frame-payload (de)serialisation: compressed streams <-> archive bytes.

A frame payload is the self-describing byte form of one compressed stream
(:class:`~repro.coding.codec.CompressedImage` or
:class:`~repro.coding.s_transform.CompressedSImage`)::

    +------------------+
    | meta_len  (u32)  |  little-endian, like every container structure
    +------------------+
    | meta block       |  bit-packed through repro.coding.bitstream
    +------------------+  (fields MSB-first, all widths byte multiples)
    | chunk bytes      |  entropy-coded subband payloads, concatenated in
    +------------------+  the order the meta block declares

The meta block is the serialised form of the frame's
:class:`~repro.coding.spec.CodecSpec` (codec wire id from the registry,
depth, geometry, bit depth, filter-bank and word-length metadata) followed
by per-subband chunk descriptors (kind, scale, shape, byte lengths); the
chunk bytes are the codecs' entropy-coded payloads verbatim.  Deserialising
a payload therefore needs nothing outside the payload itself, which is what
makes single-frame random access possible:
:func:`deserialize_stream_with_spec` returns both the stream and the
reconstructed spec, and :func:`frame_spec` rebuilds the spec from an index
entry alone, without reading the payload.

Codec identity is validated through the codec registry
(:func:`repro.coding.spec.get_family`); registry errors are wrapped in
:class:`ArchiveFormatError` with the frame context, so a payload naming an
unregistered codec reads as a format error, not a loose ``ValueError``.

For the coefficient codec the stored word-length metadata (word length,
accumulator width, per-scale integer bits) is checked against the plan the
current code derives for the same bank and depth
(:func:`repro.fixedpoint.wordlength.plan_word_lengths`); a mismatch means
the stream was written by an incompatible word-length analysis and decoding
would produce garbage, so it raises :class:`ArchiveFormatError` instead.
"""

from __future__ import annotations

import struct
from dataclasses import replace as _dc_replace
from typing import List, Tuple, Union

from ..coding.bitstream import BitReader, BitWriter
from ..coding.codec import CompressedImage, SubbandChunk
from ..coding.s_transform import CompressedSImage
from ..coding.spec import CodecSpec, UnknownCodecError, family_for_stream, get_family
from ..filters.catalog import get_bank
from ..fixedpoint.wordlength import plan_word_lengths
from .format import (
    CODEC_NAMES_BY_ID,
    KIND_IDS,
    KINDS_BY_ID,
    ArchiveFormatError,
    FrameInfo,
)

__all__ = [
    "CompressedStream",
    "Payload",
    "codec_name_for_stream",
    "frame_spec",
    "spec_for_stream",
    "payload_spec",
    "serialize_stream",
    "deserialize_stream",
    "deserialize_stream_with_spec",
    "materialize_stream",
]

CompressedStream = Union[CompressedImage, CompressedSImage]

#: Payload bytes as stored (``bytes``) or as a zero-copy ``memoryview`` of
#: the backend's mapping.  Deserialising a view keeps the chunk payloads as
#: sub-views — no intermediate copies — which is what the readers'
#: ``zero_copy`` path relies on; the decoders consume either form.
Payload = Union[bytes, memoryview]


def codec_name_for_stream(stream: CompressedStream) -> str:
    """Pipeline codec name (registry name) that produced ``stream``."""
    return family_for_stream(stream).name


def spec_for_stream(stream: CompressedStream) -> CodecSpec:
    """The :class:`CodecSpec` that reproduces ``stream``'s configuration."""
    return CodecSpec.for_stream(stream)


def frame_spec(entry: FrameInfo) -> CodecSpec:
    """Rebuild a frame's :class:`CodecSpec` from its index entry alone.

    This is what makes spec-aware random access cheap: the index carries
    the whole configuration, so no payload bytes are touched.  Registry
    errors (an index naming an unregistered codec) surface as
    :class:`ArchiveFormatError` with the frame's context.
    """
    try:
        return CodecSpec(
            codec=entry.codec,
            scales=entry.scales,
            bit_depth=entry.bit_depth,
            bank=entry.bank_name or None,
            use_rle=entry.use_rle if entry.bank_name else None,
        )
    except UnknownCodecError as exc:
        raise ArchiveFormatError(
            f"frame {entry.name!r}: index entry references an unregistered "
            f"codec ({exc})"
        ) from exc


def _write_ascii(writer: BitWriter, text: str, length_bits: int = 8) -> None:
    data = text.encode("utf-8")
    if len(data) >= (1 << length_bits):
        raise ValueError(f"string {text!r} too long for a {length_bits}-bit length")
    writer.write_uint(len(data), length_bits)
    for byte in data:
        writer.write_uint(byte, 8)


def _read_ascii(reader: BitReader, length_bits: int = 8) -> str:
    length = reader.read_uint(length_bits)
    return bytes(reader.read_uint(8) for _ in range(length)).decode("utf-8")


def serialize_stream(stream: CompressedStream) -> bytes:
    """Serialise a compressed stream into one archive frame payload.

    The header fields are written from the stream's :class:`CodecSpec`
    (codec wire id, depth, geometry, bit depth, bank), so the payload
    carries the spec and :func:`deserialize_stream_with_spec` recovers it.
    """
    spec = spec_for_stream(stream)
    family = spec.family
    writer = BitWriter()
    writer.write_uint(family.wire_id, 8)
    writer.write_uint(spec.scales, 8)
    writer.write_uint(stream.image_shape[0], 32)
    writer.write_uint(stream.image_shape[1], 32)
    writer.write_uint(spec.bit_depth, 8)
    chunk_bytes: List[bytes] = []
    if family.uses_bank:
        _write_ascii(writer, spec.bank_name)
        plan = plan_word_lengths(get_bank(spec.bank_name), spec.scales)
        writer.write_uint(plan.data_formats[1].word_length, 8)
        writer.write_uint(plan.accumulator_bits, 8)
        for bits in plan.integer_bits():
            writer.write_uint(bits, 8)
        writer.write_uint(len(stream.chunks), 16)
        for chunk in stream.chunks:
            writer.write_uint(KIND_IDS[chunk.kind], 8)
            writer.write_uint(chunk.scale, 8)
            writer.write_uint(chunk.shape[0], 32)
            writer.write_uint(chunk.shape[1], 32)
            writer.write_uint(1 if chunk.use_rle else 0, 8)
            writer.write_uint(len(chunk.payload), 32)
            writer.write_uint(len(chunk.run_payload), 32)
            chunk_bytes.append(chunk.payload)
            chunk_bytes.append(chunk.run_payload)
    else:
        writer.write_uint(len(stream.chunks), 16)
        for (kind, scale), payload in stream.chunks.items():
            shape = stream.shapes[(kind, scale)]
            writer.write_uint(KIND_IDS[kind], 8)
            writer.write_uint(scale, 8)
            writer.write_uint(shape[0], 32)
            writer.write_uint(shape[1], 32)
            writer.write_uint(len(payload), 32)
            chunk_bytes.append(payload)
    meta = writer.getvalue()
    return b"".join([struct.pack("<I", len(meta)), meta, *chunk_bytes])


def _check_plan(reader: BitReader, bank_name: str, scales: int) -> None:
    """Verify stored word-length metadata against the freshly derived plan."""
    try:
        bank = get_bank(bank_name)
    except (KeyError, ValueError) as exc:
        raise ArchiveFormatError(
            f"frame payload references unknown filter bank {bank_name!r}"
        ) from exc
    plan = plan_word_lengths(bank, scales)
    word_length = reader.read_uint(8)
    accumulator_bits = reader.read_uint(8)
    integer_bits = [reader.read_uint(8) for _ in range(scales)]
    if (
        word_length != plan.data_formats[1].word_length
        or accumulator_bits != plan.accumulator_bits
        or integer_bits != plan.integer_bits()
    ):
        raise ArchiveFormatError(
            f"stored word-length plan ({word_length}-bit words, "
            f"accumulator {accumulator_bits}, integer bits {integer_bits}) does "
            f"not match the plan derived for bank {bank_name!r} at {scales} "
            "scales; the stream was written by an incompatible analysis"
        )


def deserialize_stream_with_spec(payload: Payload) -> Tuple[CompressedStream, CodecSpec]:
    """Reconstruct one frame payload's stream *and* its :class:`CodecSpec`.

    ``payload`` may be ``bytes`` or a ``memoryview``; a view is never
    copied — the returned stream's chunk payloads are sub-views of it, so
    they remain valid only as long as the view's backing store does
    (the reader holds its mapping open until :meth:`ArchiveReader.close`).
    """
    if len(payload) < 4:
        raise ArchiveFormatError("frame payload shorter than its length prefix")
    (meta_len,) = struct.unpack_from("<I", payload, 0)
    meta = payload[4 : 4 + meta_len]
    if len(meta) != meta_len:
        raise ArchiveFormatError(
            f"frame payload declares a {meta_len}-byte meta block but only "
            f"{len(meta)} bytes follow"
        )
    reader = BitReader(meta)
    try:
        codec_id = reader.read_uint(8)
        if codec_id not in CODEC_NAMES_BY_ID:
            raise ArchiveFormatError(f"frame payload has unknown codec id {codec_id}")
        # The name came from inverting the registry, so this lookup cannot
        # miss; it just resolves the id to its family entry.
        family = get_family(CODEC_NAMES_BY_ID[codec_id])
        scales = reader.read_uint(8)
        shape = (reader.read_uint(32), reader.read_uint(32))
        bit_depth = reader.read_uint(8)
        position = 4 + meta_len

        def take(length: int) -> Payload:
            # Slicing keeps the input's form: bytes stay bytes, views stay
            # views (zero-copy into the backend's mapping).
            nonlocal position
            data = payload[position : position + length]
            if len(data) != length:
                raise ArchiveFormatError(
                    f"frame payload ends inside a {length}-byte chunk"
                )
            position += length
            return data

        if family.uses_bank:
            bank_name = _read_ascii(reader)
            _check_plan(reader, bank_name, scales)
            stream: CompressedStream = CompressedImage(
                bank_name=bank_name,
                scales=scales,
                image_shape=shape,
                bit_depth=bit_depth,
            )
            for _ in range(reader.read_uint(16)):
                kind = KINDS_BY_ID[reader.read_uint(8)]
                chunk_scale = reader.read_uint(8)
                chunk_shape = (reader.read_uint(32), reader.read_uint(32))
                use_rle = bool(reader.read_uint(8))
                payload_len = reader.read_uint(32)
                run_len = reader.read_uint(32)
                stream.chunks.append(
                    SubbandChunk(
                        kind=kind,
                        scale=chunk_scale,
                        shape=chunk_shape,
                        use_rle=use_rle,
                        payload=take(payload_len),
                        run_payload=take(run_len),
                    )
                )
        else:
            stream = CompressedSImage(
                scales=scales, image_shape=shape, bit_depth=bit_depth
            )
            for _ in range(reader.read_uint(16)):
                kind = KINDS_BY_ID[reader.read_uint(8)]
                chunk_scale = reader.read_uint(8)
                chunk_shape = (reader.read_uint(32), reader.read_uint(32))
                payload_len = reader.read_uint(32)
                stream.chunks[(kind, chunk_scale)] = take(payload_len)
                stream.shapes[(kind, chunk_scale)] = chunk_shape
    except (EOFError, KeyError) as exc:
        raise ArchiveFormatError("frame payload meta block is malformed") from exc
    if position != len(payload):
        raise ArchiveFormatError(
            f"frame payload has {len(payload) - position} trailing bytes after "
            "the declared chunks"
        )
    try:
        spec = spec_for_stream(stream)
    except (ValueError, TypeError) as exc:
        raise ArchiveFormatError(
            f"frame payload metadata does not form a valid codec "
            f"configuration ({exc})"
        ) from exc
    return stream, spec


def materialize_stream(stream: CompressedStream) -> CompressedStream:
    """Ensure a stream's chunk payloads are self-contained ``bytes``.

    A stream deserialised from a zero-copy view holds sub-views of the
    reader's storage mapping: fast to decode, but not picklable (process
    pools) and only valid while the mapping lives.  This copies any such
    views into ``bytes`` **in place** and returns the stream; byte-backed
    streams pass through untouched, so it is free on the copying path.
    """
    if isinstance(stream, CompressedImage):
        stream.chunks[:] = [
            chunk
            if isinstance(chunk.payload, bytes) and isinstance(chunk.run_payload, bytes)
            else _dc_replace(
                chunk,
                payload=bytes(chunk.payload),
                run_payload=bytes(chunk.run_payload),
            )
            for chunk in stream.chunks
        ]
    else:
        for key, data in stream.chunks.items():
            if not isinstance(data, bytes):
                stream.chunks[key] = bytes(data)
    return stream


def deserialize_stream(payload: Payload) -> CompressedStream:
    """Reconstruct the compressed stream from one archive frame payload."""
    stream, _ = deserialize_stream_with_spec(payload)
    return stream


def payload_spec(payload: Payload) -> CodecSpec:
    """Recover just the :class:`CodecSpec` from a payload's meta block.

    A triage entry point: answers "what configuration wrote these bytes"
    by parsing only the meta block — chunk *descriptors* are read for the
    RLE policy but the entropy-coded chunk bytes are never touched or
    validated, so this works even when the payload's chunk region is
    truncated (the common damage mode the sharded verify isolates).
    """
    if len(payload) < 4:
        raise ArchiveFormatError("frame payload shorter than its length prefix")
    (meta_len,) = struct.unpack_from("<I", payload, 0)
    meta = payload[4 : 4 + meta_len]
    if len(meta) != meta_len:
        raise ArchiveFormatError(
            f"frame payload declares a {meta_len}-byte meta block but only "
            f"{len(meta)} bytes follow"
        )
    reader = BitReader(meta)
    try:
        codec_id = reader.read_uint(8)
        if codec_id not in CODEC_NAMES_BY_ID:
            raise ArchiveFormatError(f"frame payload has unknown codec id {codec_id}")
        family = get_family(CODEC_NAMES_BY_ID[codec_id])
        scales = reader.read_uint(8)
        reader.read_uint(32), reader.read_uint(32)  # geometry, not part of the spec
        bit_depth = reader.read_uint(8)
        if not family.uses_bank:
            return CodecSpec(codec=family.name, scales=scales, bit_depth=bit_depth)
        bank_name = _read_ascii(reader)
        # Skip the stored word-length plan (word length, accumulator,
        # per-scale integer bits) — triage must not require it to validate.
        for _ in range(2 + scales):
            reader.read_uint(8)
        use_rle = False
        for _ in range(reader.read_uint(16)):
            reader.read_uint(8), reader.read_uint(8)  # kind, scale
            reader.read_uint(32), reader.read_uint(32)  # shape
            use_rle = bool(reader.read_uint(8)) or use_rle
            reader.read_uint(32), reader.read_uint(32)  # payload/run lengths
        return CodecSpec(
            codec=family.name,
            scales=scales,
            bit_depth=bit_depth,
            bank=bank_name,
            use_rle=use_rle,
        )
    except (EOFError, KeyError) as exc:
        raise ArchiveFormatError("frame payload meta block is malformed") from exc
    except (ValueError, TypeError) as exc:
        raise ArchiveFormatError(
            f"frame payload metadata does not form a valid codec configuration ({exc})"
        ) from exc
