"""Persistent archive container with random-access retrieval.

The paper motivates its fixed-point DWT accelerator with the storage and
*retrieval* of medical image archives; this package is the storage half of
that scenario.  An archive is a container holding many losslessly
compressed frames behind an index table, so one frame (or a slice range)
can be located, checksummed and decoded without reading anything else:

``ArchiveWriter`` / ``ArchiveReader``
    Create/append and list/random-access/verify one container.  Both talk
    to a **storage backend** (:mod:`repro.archive.backend`) rather than a
    raw file handle — paths resolve to :class:`FileBackend`, tests and
    staging flows can use :class:`MemoryBackend`, and the bytes are
    identical across backends.
``ShardedArchiveWriter`` / ``ShardedArchiveReader``
    A *sharded archive set* (:mod:`repro.archive.sharding`): one
    :class:`~repro.coding.spec.CodecSpec` spanning N containers behind a
    manifest and a deterministic by-name shard router.  Packs run one
    end-to-end worker per shard; random access opens exactly one shard;
    damage to one shard is isolated from the rest.
``StreamingIngestor`` / ``ingest_frames`` / ``ingest_async`` / ``iter_compress``
    Streaming ingest (:mod:`repro.archive.ingest`): frames flow from a
    feed through a bounded queue with backpressure straight into (sharded,
    replicated) writers, never materialising the full batch.
``ReplicatedShardSet`` / ``repair_set``
    Self-healing replication (:mod:`repro.archive.replication`): every
    shard kept in R+1 byte-identical copies (manifest v2 replica map),
    appends fan out, routed reads run the retry → failover ladder
    (:class:`RetryPolicy`, ``failovers`` counter), ``verify`` checks every
    copy, and :func:`repair_set` rebuilds damaged copies from healthy
    siblings.  :class:`FaultInjectionBackend` makes every failure mode a
    deterministic, seeded test.
``ArchiveService`` / ``ArchiveHTTPServer`` / ``serve``
    Asyncio HTTP front end (:mod:`repro.archive.server`): frame decodes
    (hot-frame LRU cache), ``Range:`` payload slice reads, manifest/stats
    JSON and streaming ingest over HTTP/1.1 — per-shard bounded worker
    queues between the sockets and the readers, the failure ladder mapped
    to status codes (503 + ``Retry-After`` for persistent damage).
``FrameInfo``
    One frame's index entry (geometry, codec/filter/word-length metadata,
    payload location and CRC-32).

The on-disk formats — container and shard-set manifest — are defined byte
for byte in :mod:`repro.archive.format` (and documented in
``docs/archive_format.md``); frame payloads are framed through
:mod:`repro.coding.bitstream` in :mod:`repro.archive.serialize`.
A CLI front end runs the scenario end to end against real files::

    python -m repro.archive pack archive.dwta scans/*.pgm
    python -m repro.archive pack set.dwts scans/*.pgm --shards 4 --workers 4
    python -m repro.archive list set.dwts
    python -m repro.archive extract set.dwts slice_004 -o slice.pgm
    python -m repro.archive verify set.dwts --deep --workers 4
    python -m repro.archive serve set.dwts --port 8765
"""

from .backend import (
    Fault,
    FaultInjectionBackend,
    FileBackend,
    MemoryBackend,
    RetryPolicy,
    StorageBackend,
    resolve_backend,
    seeded_fault_plan,
)
from .format import (
    LAYOUT_FRAME_MAJOR,
    LAYOUT_SUBBAND_MAJOR,
    LAYOUTS,
    MAGIC,
    MANIFEST_MAGIC,
    VERSION,
    ArchiveError,
    ArchiveFormatError,
    ArchiveIntegrityError,
    ArchiveTruncatedError,
    FrameInfo,
    ShardManifest,
    TruncatedArchiveError,
)
from .ingest import (
    IngestReport,
    StreamingIngestor,
    ingest_async,
    ingest_frames,
    iter_compress,
)
from .placement import assign_round_robin, normalize_placement, placement_of
from .reader import ArchiveReader, VerifyReport
from .serialize import (
    deserialize_prefix,
    deserialize_stream,
    deserialize_stream_with_spec,
    frame_spec,
    payload_layout,
    prefix_length,
    serialize_stream,
    spec_for_stream,
)
from .replication import (
    RepairReport,
    ReplicatedShardSet,
    repair_set,
    shard_replica_names,
)
from .sharding import (
    HashRouter,
    RangeRouter,
    ShardedArchiveReader,
    ShardedArchiveWriter,
    ShardRouter,
    is_sharded,
    make_router,
    open_archive,
    write_manifest,
)
from .server import (
    ArchiveHTTPServer,
    ArchiveService,
    HotFrameCache,
    HTTPError,
    serve,
)
from .writer import ArchiveWriter

__all__ = [
    "MAGIC",
    "MANIFEST_MAGIC",
    "VERSION",
    "LAYOUT_FRAME_MAJOR",
    "LAYOUT_SUBBAND_MAJOR",
    "LAYOUTS",
    "ArchiveError",
    "ArchiveFormatError",
    "ArchiveIntegrityError",
    "TruncatedArchiveError",
    "ArchiveTruncatedError",
    "FrameInfo",
    "ShardManifest",
    "StorageBackend",
    "FileBackend",
    "MemoryBackend",
    "resolve_backend",
    "RetryPolicy",
    "Fault",
    "FaultInjectionBackend",
    "seeded_fault_plan",
    "ArchiveReader",
    "VerifyReport",
    "ArchiveWriter",
    "ShardRouter",
    "HashRouter",
    "RangeRouter",
    "make_router",
    "is_sharded",
    "open_archive",
    "normalize_placement",
    "assign_round_robin",
    "placement_of",
    "ShardedArchiveWriter",
    "ShardedArchiveReader",
    "write_manifest",
    "ReplicatedShardSet",
    "RepairReport",
    "repair_set",
    "shard_replica_names",
    "IngestReport",
    "StreamingIngestor",
    "ingest_frames",
    "ingest_async",
    "iter_compress",
    "serialize_stream",
    "deserialize_stream",
    "deserialize_stream_with_spec",
    "deserialize_prefix",
    "payload_layout",
    "prefix_length",
    "frame_spec",
    "spec_for_stream",
    "ArchiveService",
    "ArchiveHTTPServer",
    "HotFrameCache",
    "HTTPError",
    "serve",
]
