"""Persistent archive container with random-access retrieval.

The paper motivates its fixed-point DWT accelerator with the storage and
*retrieval* of medical image archives; this package is the storage half of
that scenario.  An archive is a single file holding many losslessly
compressed frames behind an index table, so one frame (or a slice range)
can be located, checksummed and decoded without reading anything else:

``ArchiveWriter``
    Creates or appends to an archive, compressing frames through the
    batched pipeline (:func:`repro.coding.pipeline.compress_frames`) or
    archiving pre-compressed batches/streams as is.
``ArchiveReader``
    Lists frames, randomly accesses single frames or ranges, reassembles
    stored streams into pipeline batches, and verifies integrity.
``FrameInfo``
    One frame's index entry (geometry, codec/filter/word-length metadata,
    payload location and CRC-32).

The on-disk format is defined byte for byte in :mod:`repro.archive.format`
(and documented in ``docs/archive_format.md``); frame payloads are framed
through :mod:`repro.coding.bitstream` in :mod:`repro.archive.serialize`.
A CLI front end runs the scenario end to end against real files::

    python -m repro.archive pack archive.dwta scans/*.pgm
    python -m repro.archive list archive.dwta
    python -m repro.archive extract archive.dwta slice_004 -o slice.pgm
    python -m repro.archive verify archive.dwta --deep
"""

from .format import (
    MAGIC,
    VERSION,
    ArchiveError,
    ArchiveFormatError,
    ArchiveIntegrityError,
    FrameInfo,
    TruncatedArchiveError,
)
from .reader import ArchiveReader, VerifyReport
from .serialize import (
    deserialize_stream,
    deserialize_stream_with_spec,
    frame_spec,
    serialize_stream,
    spec_for_stream,
)
from .writer import ArchiveWriter

__all__ = [
    "MAGIC",
    "VERSION",
    "ArchiveError",
    "ArchiveFormatError",
    "ArchiveIntegrityError",
    "TruncatedArchiveError",
    "FrameInfo",
    "ArchiveReader",
    "VerifyReport",
    "ArchiveWriter",
    "serialize_stream",
    "deserialize_stream",
    "deserialize_stream_with_spec",
    "frame_spec",
    "spec_for_stream",
]
