"""Asyncio HTTP front end: serve archive retrieval and ingest over the network.

Everything below this module is pull-based and in-process; this is the
serving layer the paper's archive scenario ultimately needs — many remote
viewers pulling frames (or byte ranges of frames) from one archive set
while a modality feed appends to it.  The shape mirrors a hardware
datapath: **bounded queues with backpressure between transport and
datapath**.  Sockets never touch the archive directly; each request is
routed to its shard's bounded :class:`asyncio.Queue` and executed by that
shard's small pool of reader workers, so

* concurrent requests to *different* shards never serialise behind one
  reader (one queue + worker pool per shard),
* a flood of requests to one shard fills that shard's queue and defers the
  producers (``await queue.put``) instead of growing unbounded state, and
* a streaming ingest POST propagates the bounded-queue contract of
  :func:`~repro.archive.ingest.ingest_async` all the way to the socket:
  when the compressor falls behind, the server simply stops reading the
  request body and TCP pushes back on the sender.

The pieces, bottom up:

:class:`HotFrameCache`
    A byte-budgeted LRU of *decoded* frames (the expensive artifact),
    keyed by ``(generation, name)`` — appending bumps the generation, so
    an ingest invalidates the whole cached view atomically.  Modelled on
    the process-wide ``_InstanceLRU`` in :mod:`repro.coding.pipeline`,
    with ``cache_info()`` evidence counters.
:class:`ArchiveService`
    Wraps one archive target (plain container, sharded set, replicated
    set — by path or :class:`~repro.archive.backend.StorageBackend`)
    behind async operations: cached frame decodes, zero-copy payload
    slice reads, metadata/manifest listings, live stats, and serialized
    streaming ingest.  The PR 6 failure ladder (retry → failover) runs
    inside the readers; what survives it surfaces here as an
    :class:`~repro.archive.format.ArchiveError` the HTTP layer maps to
    **503 + Retry-After** (persistent damage needs an operator, not a
    hot loop of client retries).
:class:`ArchiveHTTPServer`
    A deliberately small HTTP/1.1 server on ``asyncio.start_server`` —
    stdlib only, keep-alive, chunked and content-length request bodies,
    hard limits on request-line/header sizes, and a strict status
    taxonomy (table in ``docs/operations.md``).  Malformed input is
    answered (400/405/411/416/431/505) or the connection is closed;
    nothing a client sends reaches the event loop as an exception.

Endpoints::

    GET  /frames/<name>        decoded frame (raw little-endian pixels;
                               X-Frame-Shape/X-Frame-Dtype headers);
                               with ``Range: bytes=a-b`` → 206 with that
                               slice of the *stored payload* read through
                               the zero-copy path (bytes_read advances by
                               the slice length only)
    GET  /frames/<name>/preview?scale=k
                               scale-k preview decode — on subband-major
                               frames only the strict byte prefix of the
                               payload is read; previews cache under
                               (generation, name, scale); ``?roi=y0-y1``
                               decodes just that row band instead
    GET  /frames/<name>/meta   one frame's index entry + stored CodecSpec
    GET  /manifest             whole-set listing: frames, shard/replica
                               layout, router, set-level spec
    GET  /stats                live counters: requests, cache, reader
                               (bytes_read/zero_copy/retries/failovers),
                               queue depths, ingest totals
    POST /ingest               streaming body of frame records →
                               ``ingest_async`` with backpressure; frames
                               become visible (and the cache generation
                               bumps) when the ingest finalises

The CLI front end is ``python -m repro.archive serve`` and the many-client
load benchmark is ``benchmarks/bench_archive_server.py``.
"""

from __future__ import annotations

import asyncio
import json
import struct
import threading
from collections import OrderedDict
from pathlib import Path
from typing import (
    AsyncIterator,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)
from urllib.parse import parse_qs, unquote

import numpy as np

from .backend import RetryPolicy, StorageBackend
from .format import ArchiveError, FrameInfo
from .ingest import IngestReport, ingest_async
from .reader import ArchiveReader
from .serialize import frame_spec
from .sharding import (
    ShardedArchiveReader,
    ShardedArchiveWriter,
    is_sharded,
    open_archive,
)
from .writer import ArchiveWriter

__all__ = [
    "HotFrameCache",
    "ArchiveService",
    "ArchiveHTTPServer",
    "HTTPError",
    "parse_range",
    "frame_to_wire",
    "serve",
]

Target = Union[str, Path, StorageBackend]

#: Hard parser limits — a client cannot make the server hold unbounded
#: header state (the ingest *body* is unbounded by design; its records are
#: individually capped instead).
MAX_REQUEST_LINE = 8192
MAX_HEADER_COUNT = 100
MAX_NAME_BYTES = 1024
MAX_FRAME_PIXELS = 1 << 26  # 8192 x 8192 at the wire's 2 bytes/pixel
MAX_CHUNK_BYTES = 1 << 24

_REASONS = {
    200: "OK",
    206: "Partial Content",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    416: "Range Not Satisfiable",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}


class HTTPError(Exception):
    """One HTTP error response: status, message, optional extra headers.

    Raised anywhere under a request handler; the connection loop renders it
    as a JSON error body.  ``close`` marks errors after which the
    connection's state is unknowable (half-parsed head, unconsumed body)
    and must be closed rather than kept alive.
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        self.close = close


# ---------------------------------------------------------------------------
# Hot-frame cache
# ---------------------------------------------------------------------------

class HotFrameCache:
    """Byte-budgeted LRU of decoded frames, keyed by ``(generation, name)``.

    The budget counts frame pixel bytes (``frame.nbytes``): decoded frames
    are the artifact worth keeping hot — a hit skips the shard queue, the
    payload read *and* the decode.  Eviction is LRU while over budget; a
    frame larger than the whole budget is simply not cached.  A zero
    budget disables the cache (every ``get`` is a miss).  Appends never
    mutate cached state: the service bumps its generation and calls
    :meth:`invalidate`, so stale entries cannot be addressed again.
    """

    def __init__(self, max_bytes: int = 64 << 20) -> None:
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.current_bytes = 0
        # Per request kind ("full" decodes vs "preview" decodes): the
        # aggregate hits/misses above stay the totals across kinds.
        self._kind_hits: Dict[str, int] = {}
        self._kind_misses: Dict[str, int] = {}
        self._items: "OrderedDict[Tuple, Tuple[FrameInfo, np.ndarray]]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Tuple, kind: str = "full") -> Optional[Tuple[FrameInfo, np.ndarray]]:
        with self._lock:
            value = self._items.get(key)
            if value is None:
                self.misses += 1
                self._kind_misses[kind] = self._kind_misses.get(kind, 0) + 1
                return None
            self._items.move_to_end(key)
            self.hits += 1
            self._kind_hits[kind] = self._kind_hits.get(kind, 0) + 1
            return value

    def put(self, key: Tuple, entry: FrameInfo, frame: np.ndarray) -> None:
        size = int(frame.nbytes)
        if size > self.max_bytes:
            return
        with self._lock:
            if key in self._items:
                return
            self._items[key] = (entry, frame)
            self.current_bytes += size
            while self.current_bytes > self.max_bytes and self._items:
                _, (_, evicted) = self._items.popitem(last=False)
                self.current_bytes -= int(evicted.nbytes)
                self.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (called on append: the generation moved on)."""
        with self._lock:
            self._items.clear()
            self.current_bytes = 0

    def cache_info(self) -> Dict[str, object]:
        with self._lock:
            kinds = sorted(set(self._kind_hits) | set(self._kind_misses))
            return {
                "entries": len(self._items),
                "bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "kinds": {
                    kind: {
                        "hits": self._kind_hits.get(kind, 0),
                        "misses": self._kind_misses.get(kind, 0),
                    }
                    for kind in kinds
                },
            }


# ---------------------------------------------------------------------------
# Wire helpers
# ---------------------------------------------------------------------------

def frame_to_wire(frame: np.ndarray) -> Tuple[str, Tuple[int, ...], bytes]:
    """A decoded frame as ``(dtype_str, shape, little-endian bytes)``.

    The HTTP body is the raw C-order pixel buffer; dtype and shape ride in
    response headers, so a client rebuilds the exact array (and the test
    suite proves byte identity against a direct reader decode).
    """
    array = np.ascontiguousarray(frame)
    little = array.astype(array.dtype.newbyteorder("<"), copy=False)
    return little.dtype.str, tuple(array.shape), little.tobytes()


def parse_range(value: str, size: int) -> Tuple[int, int]:
    """Parse a ``Range:`` header against a ``size``-byte payload.

    Returns ``(start, length)``.  Supports the single-range forms
    ``bytes=a-b``, ``bytes=a-`` and ``bytes=-suffix``.  Malformed syntax
    (including multi-range) is **400**; a syntactically valid range that
    lies outside the payload is **416** with ``Content-Range: bytes */N``.
    """
    unsatisfiable = HTTPError(
        416,
        f"range {value!r} not satisfiable over {size} payload bytes",
        headers={"Content-Range": f"bytes */{size}"},
    )
    if not value.startswith("bytes="):
        raise HTTPError(400, f"unsupported Range unit in {value!r}")
    spec = value[len("bytes="):].strip()
    if "," in spec:
        raise HTTPError(400, "multiple ranges are not supported")
    first, dash, last = spec.partition("-")
    if not dash:
        raise HTTPError(400, f"malformed Range {value!r}")
    first, last = first.strip(), last.strip()
    if not first and not last:
        raise HTTPError(400, f"malformed Range {value!r}")
    try:
        if not first:  # bytes=-suffix: the final `last` bytes
            suffix = int(last)
            if suffix <= 0:
                raise unsatisfiable
            start = max(0, size - suffix)
            return start, size - start
        start = int(first)
        stop = int(last) if last else None
    except ValueError:
        raise HTTPError(400, f"malformed Range {value!r}") from None
    if start < 0 or (stop is not None and stop < start):
        raise HTTPError(400, f"malformed Range {value!r}")
    if start >= size:
        raise unsatisfiable
    stop = size - 1 if stop is None else min(stop, size - 1)
    return start, stop - start + 1


# ---------------------------------------------------------------------------
# Request bodies (Content-Length and chunked) and the ingest wire format
# ---------------------------------------------------------------------------

class _ContentLengthBody:
    """Reads exactly ``length`` body bytes off the stream."""

    def __init__(self, reader: asyncio.StreamReader, length: int) -> None:
        self._reader = reader
        self._remaining = length

    async def read(self, count: int) -> bytes:
        """Exactly ``count`` bytes, or ``b""`` at a clean end of body."""
        if self._remaining == 0:
            return b""
        if count > self._remaining:
            raise HTTPError(400, "ingest body ends mid-record", close=True)
        data = await self._reader.readexactly(count)
        self._remaining -= count
        return data


class _ChunkedBody:
    """Reads a ``Transfer-Encoding: chunked`` body chunk by chunk."""

    def __init__(self, reader: asyncio.StreamReader) -> None:
        self._reader = reader
        self._chunk_remaining = 0
        self._done = False

    async def _next_chunk(self) -> None:
        line = await self._reader.readline()
        if not line.endswith(b"\n"):
            raise HTTPError(400, "connection closed inside chunked body", close=True)
        size_text = line.strip().split(b";", 1)[0]
        try:
            size = int(size_text, 16)
        except ValueError:
            raise HTTPError(400, f"malformed chunk size {size_text!r}", close=True) from None
        if size < 0 or size > MAX_CHUNK_BYTES:
            raise HTTPError(413, f"chunk of {size} bytes exceeds the limit", close=True)
        if size == 0:
            # Trailer section: lines until the blank line.
            while True:
                trailer = await self._reader.readline()
                if trailer in (b"\r\n", b"\n", b""):
                    break
            self._done = True
            return
        self._chunk_remaining = size

    async def read(self, count: int) -> bytes:
        """Exactly ``count`` bytes across chunks, or ``b""`` at the end."""
        parts: List[bytes] = []
        needed = count
        while needed:
            if self._done:
                if parts:
                    raise HTTPError(400, "ingest body ends mid-record", close=True)
                return b""
            if self._chunk_remaining == 0:
                await self._next_chunk()
                continue
            take = min(needed, self._chunk_remaining)
            parts.append(await self._reader.readexactly(take))
            self._chunk_remaining -= take
            needed -= take
            if self._chunk_remaining == 0:
                crlf = await self._reader.readexactly(2)
                if crlf != b"\r\n":
                    raise HTTPError(400, "malformed chunk terminator", close=True)
        return b"".join(parts)


#: One ingest record: name length, UTF-8 name, height, width (all u32 LE),
#: then ``height*width`` little-endian uint16 pixels.
_RECORD_HEAD = struct.Struct("<I")
_RECORD_DIMS = struct.Struct("<II")


def encode_ingest_record(name: str, frame: np.ndarray) -> bytes:
    """Serialise one ``(name, frame)`` pair in the POST /ingest wire format."""
    raw = np.ascontiguousarray(frame)
    if raw.ndim != 2:
        raise ValueError(f"ingest frames are 2-D, got shape {raw.shape}")
    encoded = name.encode("utf-8")
    pixels = raw.astype("<u2", copy=False)
    return b"".join(
        (
            _RECORD_HEAD.pack(len(encoded)),
            encoded,
            _RECORD_DIMS.pack(raw.shape[0], raw.shape[1]),
            pixels.tobytes(),
        )
    )


async def _frames_from_body(body) -> AsyncIterator[Tuple[str, np.ndarray]]:
    """Parse ingest records off a request body, one frame at a time.

    Pull-based: the next record is only read when the consumer —
    :func:`~repro.archive.ingest.ingest_async`, holding a bounded-queue
    permit — asks for it, which is exactly how compressor backpressure
    becomes a deferred socket read.
    """
    while True:
        head = await body.read(_RECORD_HEAD.size)
        if not head:
            return
        (name_length,) = _RECORD_HEAD.unpack(head)
        if not 0 < name_length <= MAX_NAME_BYTES:
            raise HTTPError(400, f"ingest record name length {name_length} invalid", close=True)
        try:
            name = (await body.read(name_length)).decode("utf-8")
        except UnicodeDecodeError:
            raise HTTPError(400, "ingest record name is not UTF-8", close=True) from None
        height, width = _RECORD_DIMS.unpack(await body.read(_RECORD_DIMS.size))
        if height < 1 or width < 1 or height * width > MAX_FRAME_PIXELS:
            raise HTTPError(
                400, f"ingest record geometry {height}x{width} invalid", close=True
            )
        data = await body.read(height * width * 2)
        frame = np.frombuffer(data, dtype="<u2").reshape(height, width).copy()
        yield name, frame


# ---------------------------------------------------------------------------
# The service: shard worker pools + cache over the reader stack
# ---------------------------------------------------------------------------

class ArchiveService:
    """Async operations over one archive target, behind per-shard queues.

    Parameters
    ----------
    target:
        Archive path (plain container or shard-set manifest, told apart by
        magic) or a :class:`~repro.archive.backend.StorageBackend` holding
        a plain container.
    cache_bytes:
        Hot-frame cache budget in bytes (0 disables caching).
    workers_per_shard:
        Reader worker tasks per shard (each runs its blocking archive op
        in a thread); different shards never share a queue.
    queue_depth:
        Bound of each shard's request queue; a full queue defers
        submitters instead of accumulating work.
    readonly:
        Reject ``POST /ingest`` with 403.
    retry / backend_factory / engine / zero_copy:
        Threaded through to the readers (the retry → failover ladder and
        the fault-injection seam work unchanged behind the service).
    """

    def __init__(
        self,
        target: Target,
        cache_bytes: int = 64 << 20,
        workers_per_shard: int = 2,
        queue_depth: int = 16,
        readonly: bool = False,
        engine: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        backend_factory: Optional[Callable[[Path], StorageBackend]] = None,
        zero_copy: bool = True,
        retry_after: float = 1.0,
    ) -> None:
        if workers_per_shard < 1:
            raise ValueError(f"workers_per_shard must be >= 1, got {workers_per_shard}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.target = target
        self.engine = engine
        self.retry = retry
        self.backend_factory = backend_factory
        self.zero_copy = zero_copy
        self.readonly = bool(readonly)
        self.workers_per_shard = int(workers_per_shard)
        self.queue_depth = int(queue_depth)
        #: Seconds clients are told to wait after a 503 (``Retry-After``).
        self.retry_after = retry_after
        self.cache = HotFrameCache(cache_bytes)
        self._reader = self._open_reader()
        self._graveyard: List[object] = []
        self._generation = 0
        self._ingests = 0
        self._frames_ingested = 0
        self._requests: Dict[str, int] = {}
        self._responses: Dict[str, int] = {}
        self._queues: List["asyncio.Queue"] = []
        self._queue_peaks: List[int] = []
        self._submitted = 0
        self._workers: List["asyncio.Task"] = []
        self._ingest_lock: Optional[asyncio.Lock] = None
        self._started = False

    # -- target plumbing ----------------------------------------------------------------
    def _open_reader(self):
        if isinstance(self.target, StorageBackend):
            return ArchiveReader(
                self.target,
                engine=self.engine,
                retry=self.retry,
                zero_copy=self.zero_copy,
            )
        return open_archive(
            self.target,
            engine=self.engine,
            retry=self.retry,
            backend_factory=self.backend_factory,
            zero_copy=self.zero_copy,
        )

    def _open_writer(self):
        if isinstance(self.target, StorageBackend):
            return ArchiveWriter.append(self.target)
        if is_sharded(self.target):
            # Dispatches to ReplicatedShardSet when the manifest carries a
            # replica map, so ingest through the server fans out too.
            return ShardedArchiveWriter.append(self.target)
        return ArchiveWriter.append(self.target)

    @property
    def sharded(self) -> bool:
        return isinstance(self._reader, ShardedArchiveReader)

    @property
    def kind(self) -> str:
        if self.sharded:
            return "replicated" if self._reader.replicas else "sharded"
        return "plain"

    @property
    def shard_count(self) -> int:
        return self._reader.shard_count if self.sharded else 1

    @property
    def generation(self) -> int:
        return self._generation

    def describe(self) -> str:
        if isinstance(self.target, StorageBackend):
            return self.target.describe()
        return str(self.target)

    def _route(self, name: str) -> int:
        if self.sharded:
            return self._reader.router.route(name)
        return 0

    # -- lifecycle ----------------------------------------------------------------------
    async def start(self) -> None:
        """Create the per-shard queues and worker tasks (idempotent)."""
        if self._started:
            return
        self._ingest_lock = asyncio.Lock()
        self._queues = [
            asyncio.Queue(maxsize=self.queue_depth) for _ in range(self.shard_count)
        ]
        self._queue_peaks = [0] * self.shard_count
        self._workers = [
            asyncio.create_task(
                self._worker(queue), name=f"archive-shard{shard}-worker{slot}"
            )
            for shard, queue in enumerate(self._queues)
            for slot in range(self.workers_per_shard)
        ]
        self._started = True

    async def close(self) -> None:
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []
        self._started = False
        for reader in (*self._graveyard, self._reader):
            try:
                reader.close()
            except Exception:  # pragma: no cover - best-effort shutdown
                pass
        self._graveyard = []
        self.cache.invalidate()

    async def _worker(self, queue: "asyncio.Queue") -> None:
        """One shard worker: drain the queue, run each op in a thread."""
        while True:
            fn, future = await queue.get()
            try:
                result = await asyncio.to_thread(fn)
            except BaseException as exc:  # noqa: BLE001 - relayed to the future
                if isinstance(exc, asyncio.CancelledError):
                    if not future.done():
                        future.set_exception(ConnectionAbortedError("server closing"))
                    raise
                if not future.done():
                    future.set_exception(exc)
            else:
                if not future.done():
                    future.set_result(result)
            finally:
                queue.task_done()

    async def _submit(self, shard: int, fn: Callable[[], object]):
        """Queue one blocking archive op on a shard; awaits its result.

        ``await queue.put`` is the backpressure point: a full shard queue
        suspends this request (and, through it, the connection's read
        loop) until the shard's workers catch up.
        """
        if not self._started:
            await self.start()
        queue = self._queues[shard]
        future = asyncio.get_running_loop().create_future()
        await queue.put((fn, future))
        self._submitted += 1
        depth = queue.qsize()
        if depth > self._queue_peaks[shard]:
            self._queue_peaks[shard] = depth
        return await future

    # -- counters -----------------------------------------------------------------------
    def note_request(self, endpoint: str) -> None:
        self._requests[endpoint] = self._requests.get(endpoint, 0) + 1

    def note_response(self, status: int) -> None:
        key = str(status)
        self._responses[key] = self._responses.get(key, 0) + 1

    def _reader_counters(self) -> Dict[str, object]:
        readers = [*self._graveyard, self._reader]
        counters: Dict[str, object] = {
            "bytes_read": sum(r.bytes_read for r in readers),
            "zero_copy_reads": sum(r.zero_copy_reads for r in readers),
            "retries": sum(r.retries for r in readers),
        }
        if self.sharded:
            counters["failovers"] = sum(
                r.failovers for r in readers if isinstance(r, ShardedArchiveReader)
            )
            counters["opened_shards"] = self._reader.opened_shards
            counters["placement_hits"] = sum(
                r.placement_hits
                for r in readers
                if isinstance(r, ShardedArchiveReader)
            )
            counters["placement_fallbacks"] = sum(
                r.placement_fallbacks
                for r in readers
                if isinstance(r, ShardedArchiveReader)
            )
        return counters

    def stats(self) -> Dict[str, object]:
        """The live counters behind ``GET /stats`` (plain data, no I/O)."""
        record: Dict[str, object] = {
            "archive": self.describe(),
            "kind": self.kind,
            "readonly": self.readonly,
            "requests": {
                "total": sum(self._requests.values()),
                **dict(sorted(self._requests.items())),
            },
            "responses": dict(sorted(self._responses.items())),
            "cache": self.cache.cache_info(),
            "reader": self._reader_counters(),
            "queues": {
                "capacity": self.queue_depth,
                "workers_per_shard": self.workers_per_shard,
                "depths": [queue.qsize() for queue in self._queues],
                "peak_depths": list(self._queue_peaks),
                "submitted": self._submitted,
            },
            "ingest": {
                "ingests": self._ingests,
                "frames_ingested": self._frames_ingested,
                "generation": self._generation,
            },
        }
        if self.sharded:
            record["placement"] = dict(self._reader.manifest.placement)
        return record

    # -- read operations ----------------------------------------------------------------
    async def get_frame(self, name: str) -> Tuple[FrameInfo, np.ndarray, bool]:
        """Decode one frame, hot-cache first; returns ``(entry, frame, hit)``."""
        key = (self._generation, name, "full")
        cached = self.cache.get(key, kind="full")
        if cached is not None:
            entry, frame = cached
            return entry, frame, True

        def work() -> Tuple[FrameInfo, np.ndarray]:
            reader = self._reader
            entry = reader.find(name)
            return entry, reader.decode(entry)

        entry, frame = await self._submit(self._route(name), work)
        self.cache.put(key, entry, frame)
        return entry, frame, False

    async def get_preview(
        self, name: str, scale: int
    ) -> Tuple[FrameInfo, np.ndarray, bool]:
        """Decode one frame's scale-``scale`` preview, hot-cache first.

        Previews cache under ``(generation, name, "preview", scale)`` —
        distinct per scale and per kind, and invalidated by the same
        generation bump that covers full frames.  A miss on a
        subband-major frame reads only the strict byte prefix of its
        payload (:meth:`ArchiveReader.read_preview`).
        """
        key = (self._generation, name, "preview", int(scale))
        cached = self.cache.get(key, kind="preview")
        if cached is not None:
            entry, frame = cached
            return entry, frame, True

        def work() -> Tuple[FrameInfo, np.ndarray]:
            reader = self._reader
            entry = reader.find(name)
            return entry, reader.read_preview(entry, scale)

        entry, frame = await self._submit(self._route(name), work)
        self.cache.put(key, entry, frame)
        return entry, frame, False

    async def get_roi(self, name: str, y0: int, y1: int) -> Tuple[FrameInfo, np.ndarray]:
        """Decode just the row band ``[y0, y1)`` of one frame (uncached —
        arbitrary bands would pollute the byte budget; the windowed
        synthesis already makes them cheap)."""

        def work() -> Tuple[FrameInfo, np.ndarray]:
            reader = self._reader
            entry = reader.find(name)
            return entry, reader.read_roi(entry, y0, y1)

        return await self._submit(self._route(name), work)

    async def get_frame_slice(
        self, name: str, range_value: str
    ) -> Tuple[FrameInfo, int, bytes]:
        """A ``Range:`` read of one frame's stored payload bytes.

        Returns ``(entry, start, data)``; only the requested window is
        read (zero-copy where the backend allows), which is what makes
        ranged reads cheap — the server's ``bytes_read`` counter advances
        by ``len(data)``, not by the payload size.
        """

        def work() -> Tuple[FrameInfo, int, bytes]:
            reader = self._reader
            entry = reader.find(name)
            start, length = parse_range(range_value, entry.length)
            data = reader.read_payload_slice(entry, start, length)
            return entry, start, bytes(data)

        return await self._submit(self._route(name), work)

    async def get_meta(self, name: str) -> Dict[str, object]:
        """One frame's index entry + stored spec (no payload bytes read)."""

        def work() -> Dict[str, object]:
            entry = self._reader.find(name)
            return self._entry_record(entry)

        return await self._submit(self._route(name), work)

    def _entry_record(self, entry: FrameInfo) -> Dict[str, object]:
        record = {
            "name": entry.name,
            "index": entry.index,
            "codec": entry.codec,
            "scales": entry.scales,
            "bit_depth": entry.bit_depth,
            "shape": list(entry.shape),
            "bank": entry.bank_name,
            "use_rle": entry.use_rle,
            "layout": entry.layout,
            "offset": entry.offset,
            "stored_bytes": entry.length,
            "raw_bytes": entry.raw_bytes,
            "crc32": f"{entry.crc32:08x}",
            "spec": frame_spec(entry).to_dict(),
        }
        if self.sharded:
            record["shard"] = self._route(entry.name)
        return record

    async def get_manifest(self) -> Dict[str, object]:
        """The whole-set listing behind ``GET /manifest``."""

        def work() -> Dict[str, object]:
            reader = self._reader
            frames = [self._entry_record(entry) for entry in reader.frames]
            if self.sharded:
                manifest = reader.manifest
                replica_map = manifest.replica_names or ((),) * reader.shard_count
                shards: Dict[str, object] = {
                    "count": reader.shard_count,
                    "router": manifest.router,
                    "boundaries": list(manifest.boundaries),
                    "names": list(manifest.shard_names),
                    "replicas": {
                        primary: list(replica_map[shard])
                        for shard, primary in enumerate(manifest.shard_names)
                    },
                    "placement": dict(manifest.placement),
                    "manifest_version": manifest.version,
                }
                spec = reader.spec.to_dict()
            else:
                shards = {"count": 1, "names": [self.describe()]}
                spec = reader.spec_for(0).to_dict() if len(reader) else None
            return {
                "archive": self.describe(),
                "kind": self.kind,
                "generation": self._generation,
                "frames": frames,
                "shards": shards,
                "spec": spec,
            }

        return await asyncio.to_thread(work)

    # -- ingest -------------------------------------------------------------------------
    async def ingest(self, feed, queue_depth: int = 4) -> IngestReport:
        """Stream a feed of ``(name, frame)`` pairs into the archive.

        One ingest at a time (appends are writer-exclusive); readers keep
        serving the pre-append snapshot throughout, and the new frames
        become visible — with the hot cache invalidated — only when the
        writer has finalised.
        """
        if self.readonly:
            raise HTTPError(403, "archive is served read-only")
        if not self._started:
            await self.start()
        async with self._ingest_lock:
            writer = await asyncio.to_thread(self._open_writer)
            try:
                report = await ingest_async(writer, feed, queue_depth=queue_depth)
            finally:
                await asyncio.to_thread(writer.close)
                await self._reload()
            self._ingests += 1
            self._frames_ingested += report.frames
            return report

    async def _reload(self) -> None:
        """Reopen the reader view and invalidate the cache (post-append).

        The old reader retires to a graveyard instead of closing: shard
        workers may still be serving requests against it, and its
        counters stay part of the service totals either way.
        """
        def _swap() -> None:
            self._graveyard.append(self._reader)
            self._reader = self._open_reader()

        await asyncio.to_thread(_swap)
        self._generation += 1
        self.cache.invalidate()


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------

async def _read_request_head(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, str, Dict[str, str]]]:
    """Parse one request head; ``None`` on a clean EOF before any byte.

    Raises :class:`HTTPError` (400/431/505) on malformed input and
    ``ConnectionResetError`` when the peer vanishes mid-head.
    """
    try:
        line = await reader.readline()
    except ValueError:  # line over the stream limit
        raise HTTPError(431, "request line too long", close=True) from None
    if not line:
        return None
    if not line.endswith(b"\n"):
        raise ConnectionResetError("peer closed mid request line")
    try:
        text = line.strip().decode("ascii")
    except UnicodeDecodeError:
        raise HTTPError(400, "request line is not ASCII", close=True) from None
    parts = text.split()
    if len(parts) != 3:
        raise HTTPError(400, f"malformed request line {text!r}", close=True)
    method, target, version = parts
    if not version.startswith("HTTP/"):
        raise HTTPError(400, f"malformed HTTP version {version!r}", close=True)
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise HTTPError(505, f"unsupported {version}", close=True)
    headers: Dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except ValueError:
            raise HTTPError(431, "header line too long", close=True) from None
        if not line.endswith(b"\n"):
            raise ConnectionResetError("peer closed mid headers")
        if line in (b"\r\n", b"\n"):
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise HTTPError(431, "too many headers", close=True)
        name, colon, value = line.decode("latin-1").partition(":")
        if not colon or not name.strip():
            raise HTTPError(400, f"malformed header line {line!r}", close=True)
        headers[name.strip().lower()] = value.strip()
    return method, target, version, headers


class ArchiveHTTPServer:
    """The asyncio HTTP/1.1 server over one :class:`ArchiveService`.

    ``port=0`` binds an ephemeral port (``server.address`` has the real
    one) — what the tests and the benchmark use.  The connection handler
    is exception-proof by construction: protocol errors are answered,
    archive errors map to the status taxonomy, anything unexpected gets a
    500 and the connection is closed; nothing propagates to the loop.
    """

    def __init__(
        self,
        service: ArchiveService,
        host: str = "127.0.0.1",
        port: int = 8765,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()

    # -- lifecycle ----------------------------------------------------------------------
    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_REQUEST_LINE
        )
        self.address = self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Reap open keep-alive connections; the handlers swallow their own
        # cancellation, so this never surfaces to the loop.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        await self.service.close()

    async def __aenter__(self) -> "ArchiveHTTPServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # -- responses ----------------------------------------------------------------------
    @staticmethod
    def _render(
        status: int,
        headers: Dict[str, str],
        body: bytes,
        keep_alive: bool,
    ) -> bytes:
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        headers: Dict[str, str],
        body: bytes,
        keep_alive: bool,
    ) -> None:
        self.service.note_response(status)
        writer.write(self._render(status, headers, body, keep_alive))
        await writer.drain()

    async def _send_error(
        self, writer: asyncio.StreamWriter, error: HTTPError, keep_alive: bool
    ) -> None:
        body = json.dumps({"error": error.message, "status": error.status}).encode()
        headers = {"Content-Type": "application/json", **error.headers}
        await self._send(writer, error.status, headers, body, keep_alive)

    # -- the connection loop ------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    head = await _read_request_head(reader)
                except HTTPError as error:
                    await self._send_error(writer, error, keep_alive=False)
                    break
                if head is None:
                    break
                method, target, version, headers = head
                keep_alive = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                try:
                    status, extra, body = await self._dispatch(
                        method, target, headers, reader
                    )
                except HTTPError as error:
                    if error.close:
                        keep_alive = False
                    # A request with an unconsumed body poisons the stream.
                    if method == "POST" and error.status != 403:
                        keep_alive = False
                    await self._send_error(writer, error, keep_alive)
                    if not keep_alive:
                        break
                    continue
                except Exception:  # noqa: BLE001 - last-resort guard
                    await self._send_error(
                        writer,
                        HTTPError(500, "internal server error"),
                        keep_alive=False,
                    )
                    break
                await self._send(writer, status, extra, body, keep_alive)
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            BrokenPipeError,
        ):
            pass  # peer went away; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down; end this connection quietly
        except Exception:  # noqa: BLE001 - never let a connection kill the loop
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await asyncio.shield(writer.wait_closed())
            except (Exception, asyncio.CancelledError):  # noqa: BLE001
                pass

    # -- routing ------------------------------------------------------------------------
    async def _dispatch(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        reader: asyncio.StreamReader,
    ) -> Tuple[int, Dict[str, str], bytes]:
        raw_path, _, query = target.partition("?")
        path = unquote(raw_path)
        params = parse_qs(query, keep_blank_values=True) if query else {}
        try:
            if path == "/stats":
                self._require(method, "GET")
                self.service.note_request("stats")
                return self._json(200, self.service.stats())
            if path == "/manifest":
                self._require(method, "GET")
                self.service.note_request("manifest")
                return self._json(200, await self.service.get_manifest())
            if path == "/ingest":
                self._require(method, "POST")
                self.service.note_request("ingest")
                return await self._handle_ingest(headers, reader)
            if path.startswith("/frames/"):
                remainder = path[len("/frames/"):]
                if remainder.endswith("/preview"):
                    name = remainder[: -len("/preview")]
                    if not name or "/" in name:
                        raise HTTPError(404, f"no such resource {path!r}")
                    self._require(method, "GET")
                    self.service.note_request("preview")
                    return await self._handle_preview(name, params)
                if remainder.endswith("/meta"):
                    name = remainder[: -len("/meta")]
                    if not name or "/" in name:
                        raise HTTPError(404, f"no such resource {path!r}")
                    self._require(method, "GET")
                    self.service.note_request("meta")
                    return self._json(200, await self.service.get_meta(name))
                name = remainder
                if not name or "/" in name:
                    raise HTTPError(404, f"no such resource {path!r}")
                self._require(method, "GET")
                self.service.note_request("frames")
                return await self._handle_frame(name, headers)
            raise HTTPError(404, f"no such resource {path!r}")
        except HTTPError:
            raise
        except KeyError as exc:
            message = str(exc.args[0]) if exc.args else str(exc)
            raise HTTPError(404, message) from exc
        except ValueError as exc:
            raise HTTPError(400, str(exc)) from exc
        except (ArchiveError, OSError) as exc:
            # The readers already ran the retry → failover ladder; damage
            # that still surfaces here is persistent.  503 + Retry-After
            # tells clients to back off while an operator repairs.
            raise HTTPError(
                503,
                f"{type(exc).__name__}: {exc}",
                headers={"Retry-After": f"{self.service.retry_after:g}"},
            ) from exc

    @staticmethod
    def _require(method: str, allowed: str) -> None:
        if method != allowed:
            raise HTTPError(
                405, f"method {method} not allowed", headers={"Allow": allowed}
            )

    @staticmethod
    def _json(status: int, payload: object) -> Tuple[int, Dict[str, str], bytes]:
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        return status, {"Content-Type": "application/json"}, body

    async def _handle_frame(
        self, name: str, headers: Dict[str, str]
    ) -> Tuple[int, Dict[str, str], bytes]:
        range_value = headers.get("range")
        if range_value is not None:
            entry, start, data = await self.service.get_frame_slice(name, range_value)
            return (
                206,
                {
                    "Content-Type": "application/octet-stream",
                    "Content-Range": (
                        f"bytes {start}-{start + len(data) - 1}/{entry.length}"
                    ),
                    "X-Frame-Name": entry.name,
                    "X-Frame-Payload-Bytes": str(entry.length),
                },
                data,
            )
        entry, frame, hit = await self.service.get_frame(name)
        dtype, shape, body = frame_to_wire(frame)
        return (
            200,
            {
                "Content-Type": "application/octet-stream",
                "X-Frame-Name": entry.name,
                "X-Frame-Shape": "x".join(str(side) for side in shape),
                "X-Frame-Dtype": dtype,
                "X-Frame-Bit-Depth": str(entry.bit_depth),
                "X-Archive-Cache": "hit" if hit else "miss",
            },
            body,
        )

    async def _handle_preview(
        self, name: str, params: Dict[str, List[str]]
    ) -> Tuple[int, Dict[str, str], bytes]:
        """``GET /frames/<name>/preview?scale=k`` or ``?roi=y0-y1``.

        The body is the raw pixel buffer of exactly what
        ``reader.read_preview`` / ``reader.read_roi`` return (same wire
        shape as a full frame; ``X-Frame-Scale`` / ``X-Frame-Roi`` name
        the request).  ``scale`` defaults to 1.
        """
        scale_values = params.get("scale")
        roi_values = params.get("roi")
        if scale_values and roi_values:
            raise HTTPError(400, "pass either scale= or roi=, not both")
        if roi_values:
            y0_text, dash, y1_text = roi_values[-1].partition("-")
            try:
                if not dash:
                    raise ValueError
                y0, y1 = int(y0_text), int(y1_text)
            except ValueError:
                raise HTTPError(
                    400, f"malformed roi {roi_values[-1]!r} (expected y0-y1)"
                ) from None
            entry, frame = await self.service.get_roi(name, y0, y1)
            dtype, shape, body = frame_to_wire(frame)
            return (
                200,
                {
                    "Content-Type": "application/octet-stream",
                    "X-Frame-Name": entry.name,
                    "X-Frame-Shape": "x".join(str(side) for side in shape),
                    "X-Frame-Dtype": dtype,
                    "X-Frame-Bit-Depth": str(entry.bit_depth),
                    "X-Frame-Roi": f"{y0}-{y1}",
                },
                body,
            )
        try:
            scale = int(scale_values[-1]) if scale_values else 1
        except ValueError:
            raise HTTPError(
                400, f"malformed scale {scale_values[-1]!r} (expected an integer)"
            ) from None
        entry, frame, hit = await self.service.get_preview(name, scale)
        dtype, shape, body = frame_to_wire(frame)
        return (
            200,
            {
                "Content-Type": "application/octet-stream",
                "X-Frame-Name": entry.name,
                "X-Frame-Shape": "x".join(str(side) for side in shape),
                "X-Frame-Dtype": dtype,
                "X-Frame-Bit-Depth": str(entry.bit_depth),
                "X-Frame-Scale": str(scale),
                "X-Frame-Layout": entry.layout,
                "X-Archive-Cache": "hit" if hit else "miss",
            },
            body,
        )

    async def _handle_ingest(
        self, headers: Dict[str, str], reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, str], bytes]:
        if self.service.readonly:
            # Checked before touching the body so the 403 can keep the
            # connection state defined (the body is still unread, but the
            # connection loop closes after any POST error anyway).
            raise HTTPError(403, "archive is served read-only")
        encoding = headers.get("transfer-encoding", "").lower()
        if encoding and encoding != "chunked":
            raise HTTPError(501, f"unsupported transfer encoding {encoding!r}", close=True)
        if encoding == "chunked":
            body: Union[_ChunkedBody, _ContentLengthBody] = _ChunkedBody(reader)
        else:
            length_text = headers.get("content-length")
            if length_text is None:
                raise HTTPError(411, "ingest needs Content-Length or chunked", close=True)
            try:
                length = int(length_text)
            except ValueError:
                raise HTTPError(400, f"malformed Content-Length {length_text!r}", close=True) from None
            if length < 0:
                raise HTTPError(400, f"malformed Content-Length {length_text!r}", close=True)
            body = _ContentLengthBody(reader, length)
        report = await self.service.ingest(_frames_from_body(body))
        return self._json(
            200,
            {
                "frames": report.frames,
                "queue_depth": report.queue_depth,
                "max_in_flight": report.max_in_flight,
                "generation": self.service.generation,
            },
        )


async def serve(
    target: Target,
    host: str = "127.0.0.1",
    port: int = 8765,
    **service_options,
) -> ArchiveHTTPServer:
    """Open ``target`` and start an :class:`ArchiveHTTPServer` on it."""
    server = ArchiveHTTPServer(
        ArchiveService(target, **service_options), host=host, port=port
    )
    await server.start()
    return server
