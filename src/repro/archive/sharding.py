"""Sharded archive sets: one codec configuration spanning N container files.

A single container file caps an archive at one file and one filesystem, and
caps parallel ingest at "many workers funnel into one writer".  A *sharded
archive set* lifts both: a small manifest file (byte layout in
:mod:`repro.archive.format`) names N ordinary single-file containers — the
shards — plus a deterministic **shard router** that maps every frame name
to exactly one shard.  Each shard is a complete, self-contained archive
(the existing tools read it unchanged), and the set-level API mirrors the
single-archive API:

``ShardedArchiveWriter``
    Creates or appends to a set; :meth:`~ShardedArchiveWriter.append_batch`
    with ``workers`` > 1 runs **one end-to-end worker per shard** — each
    worker process compresses *and writes* its own shard, so ingest scales
    without a shared writer bottleneck — and produces byte-identical shard
    files to the serial path.
``ShardedArchiveReader``
    Lists the whole set, randomly accesses one frame by routing its name to
    its shard (only that shard is opened and only that payload is read —
    the per-shard ``bytes_read`` counters are the evidence), bulk-decodes
    through the batched pipeline, and verifies shard by shard with damage
    *isolated*: a truncated or corrupted shard is reported while every
    healthy shard still verifies and serves reads.

Routing is by frame *name*, never by position, so the assignment is stable
across appends and processes:

* ``hash`` (default): CRC-32 of the UTF-8 name modulo the shard count —
  stateless and uniform;
* ``range``: lexicographic ranges split by ``shards - 1`` boundary names
  (frame ``name`` goes to the first shard whose boundary exceeds it), for
  sets whose names encode a meaningful order (series, dates).

Because compression is per-frame deterministic, packing the same frames
into 1 shard or N shards yields **identical per-frame payload bytes**; only
their grouping differs.  The set-level frame order (listing, bulk decode)
is lexicographic by name, which is likewise shard-count independent —
``tests/archive/test_sharding.py`` proves both invariances.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from bisect import bisect_right
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..coding.executor import is_socket_workers, pool_context
from ..coding.pipeline import (
    CompressedBatch,
    PipelineStats,
    compress_frames,
    decompress_frames,
)
from ..coding.spec import CodecSpec, default_engine, reject_spec_overrides
from .backend import RetryPolicy, StorageBackend
from .format import (
    LAYOUT_FRAME_MAJOR,
    LAYOUTS,
    MANIFEST_MAGIC,
    MANIFEST_VERSION,
    ArchiveError,
    ArchiveFormatError,
    ArchiveIntegrityError,
    FrameInfo,
    ShardManifest,
    TruncatedArchiveError,
    crc32 as _crc32,
    pack_manifest,
    unpack_manifest,
)
from .placement import PlacementLike, normalize_placement
from .reader import ArchiveReader, FrameKey, VerifyReport
from .serialize import CompressedStream, materialize_stream
from .writer import ArchiveWriter

__all__ = [
    "ShardRouter",
    "HashRouter",
    "RangeRouter",
    "make_router",
    "router_for_manifest",
    "shard_file_names",
    "write_manifest",
    "is_sharded",
    "open_archive",
    "ShardedArchiveWriter",
    "ShardedArchiveReader",
]

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Routers
# ---------------------------------------------------------------------------

class ShardRouter:
    """Deterministic frame-name → shard-index mapping."""

    kind = "router"

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = int(shard_count)

    def route(self, name: str) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(shards={self.shard_count})"


class HashRouter(ShardRouter):
    """CRC-32 of the UTF-8 frame name modulo the shard count.

    CRC-32 (not Python's ``hash``) so the assignment is identical across
    processes, interpreter runs and platforms — a requirement for a mapping
    that is baked into file placement.
    """

    kind = "hash"

    def route(self, name: str) -> int:
        return (zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF) % self.shard_count


class RangeRouter(ShardRouter):
    """Lexicographic range sharding by ``shards - 1`` sorted boundary names.

    Frame ``name`` routes to ``bisect_right(boundaries, name)``: names
    strictly below the first boundary go to shard 0, and so on.  Useful
    when frame names encode series order and locality per shard matters.
    """

    kind = "range"

    def __init__(self, shard_count: int, boundaries: Sequence[str]) -> None:
        super().__init__(shard_count)
        self.boundaries = tuple(boundaries)
        if len(self.boundaries) != shard_count - 1:
            raise ValueError(
                f"range router over {shard_count} shards needs "
                f"{shard_count - 1} boundaries, got {len(self.boundaries)}"
            )
        if list(self.boundaries) != sorted(self.boundaries):
            raise ValueError("range boundaries must be sorted")

    def route(self, name: str) -> int:
        return bisect_right(self.boundaries, name)


def make_router(
    kind: str, shard_count: int, boundaries: Sequence[str] = ()
) -> ShardRouter:
    """Build a router by manifest kind name."""
    if kind == "hash":
        if boundaries:
            raise ValueError("hash router takes no boundaries")
        return HashRouter(shard_count)
    if kind == "range":
        return RangeRouter(shard_count, boundaries)
    raise ValueError(f"unknown router {kind!r} (expected 'hash' or 'range')")


def router_for_manifest(manifest: ShardManifest) -> ShardRouter:
    """The router a stored manifest describes."""
    return make_router(manifest.router, len(manifest.shard_names), manifest.boundaries)


# ---------------------------------------------------------------------------
# Set layout helpers
# ---------------------------------------------------------------------------

def shard_file_names(manifest_path: PathLike, shard_count: int) -> List[str]:
    """Default shard file names for a manifest: ``<stem>.shard<i>.dwta``."""
    stem = Path(manifest_path).stem
    return [f"{stem}.shard{i:03d}.dwta" for i in range(shard_count)]


def write_manifest(path: PathLike, manifest: ShardManifest) -> None:
    """Write a manifest crash-safely: temp file + atomic rename.

    The bytes land in ``<name>.tmp`` *in the same directory* (so the rename
    cannot cross filesystems), are fsynced, and replace the target with one
    atomic :func:`os.replace` — mirroring the container's own crash-safe
    append.  A writer killed mid-rewrite therefore leaves either the old
    manifest or the new one, never a torn half-file; at worst a stale
    ``.tmp`` remains, which the next write simply overwrites.
    """
    path = Path(path)
    temp = path.with_name(path.name + ".tmp")
    data = pack_manifest(manifest)
    with open(temp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(temp, path)


def is_sharded(path: PathLike) -> bool:
    """Whether ``path`` is a shard-set manifest (checked by magic bytes)."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MANIFEST_MAGIC)) == MANIFEST_MAGIC
    except OSError:
        return False


def open_archive(
    path: PathLike,
    engine: Optional[str] = None,
    verify_checksums: bool = True,
    zero_copy: bool = True,
    retry: Optional[RetryPolicy] = None,
    backend_factory: Optional[Callable[[Path], StorageBackend]] = None,
) -> Union[ArchiveReader, "ShardedArchiveReader"]:
    """Open a single archive *or* a sharded set, decided by the file magic.

    This is what lets the CLI (``list``/``extract``/``verify``) and the HTTP
    service take either kind of target transparently.  ``retry`` and
    ``backend_factory`` are threaded through to the reader (on a plain
    archive, ``backend_factory`` maps the path to the backend to open).

    A path whose magic was just read but that vanishes before the reader's
    own open (deleted mid-session) surfaces as
    :class:`TruncatedArchiveError` — archive damage the failure ladder
    handles — not as a raw ``FileNotFoundError``; a path that never existed
    still raises ``FileNotFoundError``.
    """
    try:
        with open(path, "rb") as fh:
            existed, magic = True, fh.read(len(MANIFEST_MAGIC))
    except OSError:
        existed, magic = False, b""
    if magic == MANIFEST_MAGIC:
        return ShardedArchiveReader(
            path,
            engine=engine,
            verify_checksums=verify_checksums,
            zero_copy=zero_copy,
            retry=retry,
            backend_factory=backend_factory,
        )
    target: Union[Path, StorageBackend] = (
        backend_factory(Path(path)) if backend_factory else Path(path)
    )
    try:
        return ArchiveReader(
            target,
            engine=engine,
            verify_checksums=verify_checksums,
            zero_copy=zero_copy,
            retry=retry,
        )
    except FileNotFoundError as exc:
        if existed:
            raise TruncatedArchiveError(
                f"archive {path} disappeared while being opened (the file "
                "existed when its magic was probed)"
            ) from exc
        raise


def _read_manifest(path: Path) -> ShardManifest:
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        raise ArchiveFormatError(f"no shard-set manifest at {path}") from None
    return unpack_manifest(data)


# ---------------------------------------------------------------------------
# Worker entry points (module level so they pickle for the process pool)
# ---------------------------------------------------------------------------

def _append_shard_worker(
    paths: List[str],
    spec: CodecSpec,
    frames: List[np.ndarray],
    names: List[str],
    layout: str = LAYOUT_FRAME_MAJOR,
) -> Tuple[List[FrameInfo], PipelineStats]:
    """One end-to-end shard worker: compress once, write every copy.

    ``paths`` is the shard's write fan-out — the primary container first,
    then its replicas (empty past the primary for an unreplicated set).
    Each copy receives the *same* streams in the same order against the
    same starting bytes, which is what makes the copies byte-identical.
    """
    batch = compress_frames(frames, spec=spec)
    entries: Optional[List[FrameInfo]] = None
    for path in paths:
        with ArchiveWriter.append(path, spec=spec, layout=layout) as writer:
            copy_entries = writer.add_batch(batch, names=names)
        if entries is None:
            entries = copy_entries
    return entries or [], batch.stats


def _verify_copy_worker(
    target, deep: bool, engine: str, verify_checksums: bool
) -> Dict:
    """Verify one shard *copy*, mapping any damage to a failure record.

    Besides the totals, a healthy copy reports a ``digest`` — CRC-32 over
    its sorted (frame name, payload CRC) pairs, free from the index alone —
    so the set-level verify can detect copies that are individually valid
    but *diverged* from their siblings (e.g. a replica left stale by a
    writer killed between copy finalisations).
    """
    try:
        with ArchiveReader(target, engine=engine, verify_checksums=verify_checksums) as reader:
            report = reader.verify(deep=deep)
            digest_src = "\n".join(
                f"{e.name}:{e.crc32:08x}" for e in sorted(reader.frames, key=lambda e: e.name)
            )
            return {
                "ok": True,
                "frames": report["frames"],
                "payload_bytes": report["payload_bytes"],
                "digest": _crc32(digest_src.encode("utf-8")),
            }
    except (ArchiveError, OSError) as exc:
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------

class ShardedArchiveWriter:
    """Writes a sharded archive set; use :meth:`create` or :meth:`append`.

    The set shares one :class:`~repro.coding.spec.CodecSpec` (stored in the
    manifest, so even empty shards know their configuration) and one router.
    Frames are routed by name; each shard is an ordinary
    :class:`~repro.archive.writer.ArchiveWriter` container and inherits its
    crash-safety: an interrupted append leaves every shard either in its
    pre-append state or finalised with its new frames — never torn.
    """

    def __init__(
        self,
        path: PathLike,
        manifest: ShardManifest,
        spec: CodecSpec,
        names: set,
        total: int,
        workers: int = 1,
    ) -> None:
        self.path = Path(path)
        self.manifest = manifest
        #: The set-level compression configuration (from the manifest).
        self.spec = spec
        self.router = router_for_manifest(manifest)
        #: Default workers for :meth:`append_batch` — a pool width
        #: (1 = serial) or socket worker addresses / a
        #: :class:`~repro.coding.netexec.WorkerPool` for distributed
        #: appends.
        self.workers = workers if is_socket_workers(workers) else int(workers)
        #: Aggregated pipeline stats of every append on this writer.
        self.stats = PipelineStats()
        #: Distributed appends routed to each shard's placed worker, and
        #: appends that fell back to any-worker routing (placement absent,
        #: or the placed node down/unknown).
        self.placement_hits = 0
        self.placement_fallbacks = 0
        self.shard_paths: List[Path] = [
            self.path.parent / name for name in manifest.shard_names
        ]
        self._writers: Dict[int, ArchiveWriter] = {}
        self._names = names
        self._total = total
        self._closed = False

    # -- construction -------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: PathLike,
        shards: int = 2,
        router: str = "hash",
        boundaries: Sequence[str] = (),
        spec: Optional[CodecSpec] = None,
        overwrite: bool = False,
        workers: int = 1,
        codec: Optional[str] = None,
        scales: Optional[int] = None,
        engine: Optional[str] = None,
        layout: str = LAYOUT_FRAME_MAJOR,
        placement: PlacementLike = None,
        **codec_options,
    ) -> "ShardedArchiveWriter":
        """Create a new set: N empty finalised shards plus the manifest.

        ``path`` is the manifest file (conventionally ``*.dwts``); shard
        containers are created next to it.  Configuration defaults match
        :meth:`ArchiveWriter.create`; ``spec`` and the legacy keywords are
        mutually exclusive, as everywhere else.  ``layout`` (stored in the
        manifest) sets the payload layout of every shard — pass
        ``"subband-major"`` for progressive prefix-decodable payloads.
        ``placement`` (shard file name → preferred worker node id, or a
        node-id sequence in shard order) stores the distributed routing
        map; a placed manifest is stamped version 3, an unplaced one keeps
        its version-2 bytes (see :mod:`repro.archive.placement`).
        """
        if layout not in LAYOUTS:
            raise ValueError(f"unknown payload layout {layout!r} (expected one of {LAYOUTS})")
        if spec is None:
            spec = CodecSpec.from_kwargs(
                codec=codec if codec is not None else "s-transform",
                scales=scales if scales is not None else 4,
                engine=engine,
                **codec_options,
            )
        else:
            reject_spec_overrides(codec_options, codec=codec, scales=scales, engine=engine)
        path = Path(path)
        if path.exists() and not overwrite:
            raise FileExistsError(
                f"shard-set manifest {path} already exists (pass overwrite=True)"
            )
        shard_names = tuple(shard_file_names(path, shards))
        node_ids = normalize_placement(placement, shard_names)
        manifest = ShardManifest(
            version=MANIFEST_VERSION if node_ids else 2,
            router=router,
            shard_names=shard_names,
            spec_json=spec.to_json(),
            boundaries=tuple(boundaries),
            layout=layout,
            node_ids=node_ids,
        )
        return cls._init_set(path, manifest, spec, overwrite, workers)

    @classmethod
    def _init_set(
        cls,
        path: Path,
        manifest: ShardManifest,
        spec: CodecSpec,
        overwrite: bool,
        workers: int,
    ) -> "ShardedArchiveWriter":
        """Materialise a new set: every container (primaries and replicas)
        plus the crash-safely written manifest."""
        router_for_manifest(manifest)  # validate router/boundaries up front
        # Every container is born a valid (empty, finalised) archive, so the
        # set is complete and readable from the instant the manifest lands.
        replica_map = manifest.replica_names or ((),) * len(manifest.shard_names)
        for shard, name in enumerate(manifest.shard_names):
            for copy in (name, *replica_map[shard]):
                ArchiveWriter.create(
                    path.parent / copy,
                    spec=spec,
                    overwrite=overwrite,
                    layout=manifest.layout,
                ).close()
        write_manifest(path, manifest)
        return cls(path, manifest, spec, names=set(), total=0, workers=workers)

    @classmethod
    def append(
        cls, path: PathLike, workers: int = 1, engine: Optional[str] = None
    ) -> "ShardedArchiveWriter":
        """Open an existing set to add frames; configuration comes from the
        manifest, so appends always match how the set was created.
        ``engine`` may override the entropy-coding engine — an execution
        choice, not a format one (streams are byte-identical either way).

        A manifest with a replica map opens as a
        :class:`~repro.archive.replication.ReplicatedShardSet`, so appends
        fan out to every copy no matter which class opened the set."""
        path = Path(path)
        manifest = _read_manifest(path)
        if cls is ShardedArchiveWriter and manifest.replica_names:
            from .replication import ReplicatedShardSet

            return ReplicatedShardSet.append(path, workers=workers, engine=engine)
        spec = CodecSpec.from_json(manifest.spec_json)
        if engine is not None:
            spec = spec.replace(engine=engine)
        names: set = set()
        total = 0
        for shard_name in manifest.shard_names:
            with ArchiveReader(path.parent / shard_name) as reader:
                names.update(reader.names())
                total += len(reader)
        return cls(path, manifest, spec, names=names, total=total, workers=workers)

    # -- shard plumbing -----------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.shard_paths)

    def __len__(self) -> int:
        return self._total

    @property
    def frame_names(self) -> List[str]:
        """Names of every frame stored in the set so far."""
        return sorted(self._names)

    def _shard_write_paths(self, shard: int) -> List[str]:
        """The files one shard's appends land in (primary only here; the
        replicated subclass adds the shard's replicas)."""
        return [str(self.shard_paths[shard])]

    def _writer(self, shard: int) -> ArchiveWriter:
        if shard not in self._writers:
            self._writers[shard] = ArchiveWriter.append(
                self.shard_paths[shard], spec=self.spec, layout=self.manifest.layout
            )
        return self._writers[shard]

    def _flush_shards(self) -> None:
        """Finalise any in-process shard writers (before pooled appends)."""
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    def _resolve_names(
        self, count: int, names: Optional[Sequence[str]]
    ) -> List[str]:
        if names is None:
            resolved = []
            for offset in range(count):
                name = f"frame_{self._total + offset:05d}"
                while name in self._names or name in resolved:
                    name += "_"
                resolved.append(name)
            return resolved
        if len(names) != count:
            raise ValueError(f"{len(names)} names for {count} frames")
        seen = set()
        for name in names:
            if name in self._names or name in seen:
                raise ValueError(f"archive set already has a frame named {name!r}")
            seen.add(name)
        return list(names)

    # -- adding frames ------------------------------------------------------------------
    def add_stream(self, stream: CompressedStream, name: Optional[str] = None) -> FrameInfo:
        """Archive one already-compressed stream, routed to its shard.

        This is the streaming-ingest entry point: frames arrive one at a
        time (:mod:`repro.archive.ingest`) and flow straight into the right
        shard's writer without any set-level buffering.
        """
        if self._closed:
            raise ValueError("sharded archive writer is closed")
        (name,) = self._resolve_names(1, None if name is None else [name])
        entry = self._writer(self.router.route(name)).add_stream(stream, name)
        self._names.add(name)
        self._total += 1
        return entry

    def append_batch(
        self,
        frames: Sequence[np.ndarray],
        names: Optional[Sequence[str]] = None,
        workers=None,
    ) -> List[FrameInfo]:
        """Compress and archive ``frames``, one pipeline run per shard.

        Serially the shards are filled one after another; with ``workers``
        > 1 every non-empty shard gets its own end-to-end worker process
        (compress + write), the true "one worker per shard" scale-out.
        With socket workers (``"host:port,host:port"`` or a
        :class:`~repro.coding.netexec.WorkerPool`) each shard's
        compression runs on a remote worker — routed to the shard's
        *placed* node when the manifest carries a placement map
        (``placement_hits``/``placement_fallbacks`` count the routing) —
        and the streams are written locally.  The shard files are
        byte-identical in every mode.  Returns the new index entries in
        input order (``entry.index`` is shard-local).
        """
        if self._closed:
            raise ValueError("sharded archive writer is closed")
        frames = [np.asarray(frame) for frame in frames]
        if workers is None:
            workers = self.workers
        elif not is_socket_workers(workers):
            workers = int(workers)
        resolved = self._resolve_names(len(frames), names)
        groups: Dict[int, List[int]] = {}
        for position, name in enumerate(resolved):
            groups.setdefault(self.router.route(name), []).append(position)
        entries: List[Optional[FrameInfo]] = [None] * len(frames)
        if is_socket_workers(workers) and groups:
            self._run_shard_netpool(groups, frames, resolved, entries, workers)
        elif workers > 1 and len(groups) > 1:
            self._run_shard_pool(groups, frames, resolved, entries, workers)
        else:
            for shard in sorted(groups):
                positions = groups[shard]
                batch = compress_frames(
                    [frames[i] for i in positions], spec=self.spec
                )
                shard_entries = self._writer(shard).add_batch(
                    batch, names=[resolved[i] for i in positions]
                )
                for position, entry in zip(positions, shard_entries):
                    entries[position] = entry
                self.stats.merge(batch.stats)
        self._names.update(resolved)
        self._total += len(frames)
        return [entry for entry in entries if entry is not None]

    def add_frames(
        self,
        frames: Sequence[np.ndarray],
        names: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
    ) -> List[FrameInfo]:
        """Alias of :meth:`append_batch` (single-archive API parity)."""
        return self.append_batch(frames, names=names, workers=workers)

    def _run_shard_pool(
        self,
        groups: Dict[int, List[int]],
        frames: List[np.ndarray],
        names: List[str],
        entries: List[Optional[FrameInfo]],
        workers: int,
    ) -> None:
        """One worker per shard: each process compresses and writes its shard."""
        from concurrent.futures import ProcessPoolExecutor

        # Workers reopen the shard files, so in-process writers must have
        # finalised first (their frames stay; this is an ordinary close).
        self._flush_shards()
        shard_order = sorted(groups)
        began = time.perf_counter()
        with ProcessPoolExecutor(
            max_workers=min(workers, len(shard_order)), mp_context=pool_context()
        ) as pool:
            futures = {
                shard: pool.submit(
                    _append_shard_worker,
                    self._shard_write_paths(shard),
                    self.spec,
                    [frames[i] for i in groups[shard]],
                    [names[i] for i in groups[shard]],
                    self.manifest.layout,
                )
                for shard in shard_order
            }
            results = {shard: future.result() for shard, future in futures.items()}
        wall = time.perf_counter() - began
        merged = PipelineStats()
        for shard in shard_order:
            shard_entries, shard_stats = results[shard]
            for position, entry in zip(groups[shard], shard_entries):
                entries[position] = entry
            merged.merge(shard_stats)
        merged.workers = min(workers, len(shard_order))
        merged.wall_seconds = wall
        self.stats.merge(merged)

    def _run_shard_netpool(
        self,
        groups: Dict[int, List[int]],
        frames: List[np.ndarray],
        names: List[str],
        entries: List[Optional[FrameInfo]],
        workers,
    ) -> None:
        """Distributed append: compress each shard on a socket worker.

        Each shard's frames go out as one ``compress`` job, routed to the
        shard's placed node when the manifest has a placement map
        (any-worker otherwise, or when the placed node is down — counted
        in ``placement_fallbacks``); the returned streams are written to
        the shard's copies *locally, in shard order*, so the on-disk bytes
        are exactly the serial path's regardless of which worker compressed
        what or in which order results arrived.
        """
        from concurrent.futures import ThreadPoolExecutor

        from ..coding.netexec import WorkerPool

        self._flush_shards()
        pool, owns = WorkerPool.from_any(workers)
        shard_order = sorted(groups)
        placement = self.manifest.placement
        began = time.perf_counter()
        try:
            live = pool.ensure_connected()

            def run_shard(shard: int):
                preferred = placement.get(self.manifest.shard_names[shard])
                result, node = pool.call(
                    "compress",
                    {
                        "spec": self.spec,
                        "items": [frames[i] for i in groups[shard]],
                    },
                    preferred_node=preferred,
                )
                return shard, result, node, preferred

            with ThreadPoolExecutor(
                max_workers=min(len(shard_order), len(live))
            ) as threads:
                outcomes = {
                    shard: (result, node, preferred)
                    for shard, result, node, preferred in threads.map(
                        run_shard, shard_order
                    )
                }
        finally:
            if owns:
                pool.disconnect()
        wall = time.perf_counter() - began
        merged = PipelineStats()
        for shard in shard_order:
            result, node, preferred = outcomes[shard]
            if preferred is not None:
                if node == preferred:
                    self.placement_hits += 1
                else:
                    self.placement_fallbacks += 1
            batch = CompressedBatch.from_spec(self.spec, result["items"])
            shard_entries: Optional[List[FrameInfo]] = None
            for path in self._shard_write_paths(shard):
                with ArchiveWriter.append(
                    path, spec=self.spec, layout=self.manifest.layout
                ) as writer:
                    copy_entries = writer.add_batch(
                        batch, names=[names[i] for i in groups[shard]]
                    )
                if shard_entries is None:
                    shard_entries = copy_entries
            for position, entry in zip(groups[shard], shard_entries or []):
                entries[position] = entry
            merged.merge(result["stats"])
        merged.workers = len(live)
        merged.wall_seconds = wall
        self.stats.merge(merged)

    # -- finalisation -------------------------------------------------------------------
    def close(self) -> None:
        """Finalise every open shard writer."""
        if self._closed:
            return
        self._flush_shards()
        self._closed = True

    def __enter__(self) -> "ShardedArchiveWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------

class ShardedArchiveReader:
    """Opens a sharded set for listing, routed random access and verification.

    Shards open lazily: random access by *name* routes through the manifest
    router and touches exactly one shard file — ``opened_shards`` and the
    summed ``bytes_read`` counter prove it.  Set-level listing and bulk
    decoding order frames lexicographically by name, which is independent
    of the shard count (so re-sharding a set never changes what
    :meth:`decode_all` returns).

    On a *replicated* set (manifest with a replica map) every routed read
    runs the full failure-handling ladder:

    1. **retry** — transient ``OSError`` faults on a copy are absorbed by
       the reader's :class:`~repro.archive.backend.RetryPolicy` (bounded
       attempts, exponential backoff), counted in ``retries``;
    2. **failover** — persistent damage (``ArchiveIntegrityError``,
       truncation, ``OSError`` past its retries) drops the copy and
       reopens the next one, counted in ``failovers``; every copy is
       byte-identical, so index entries carry over unchanged;
    3. only when *every* copy of the shard fails does the error propagate
       (and :mod:`repro.archive.replication` can then not repair either).

    One reader instance may be shared by many threads: per-copy payload
    reads are atomic (seek+read under the copy reader's lock) and the
    shard map, ``bytes_read``/``retries``/``failovers`` counters and
    failover transitions are guarded by one set-level lock, so concurrent
    routed reads never cross-talk.
    """

    #: Error classes that mean "this copy is damaged or unreachable" and
    #: trigger failover to the next copy.  Deliberately broad within the
    #: archive taxonomy: corruption surfaces as integrity *and* format
    #: errors (bad magic, torn index, payload/index disagreement).
    _FAILOVER_ERRORS = (ArchiveError, OSError)

    def __init__(
        self,
        path: PathLike,
        engine: Optional[str] = None,
        verify_checksums: bool = True,
        retry: Optional[RetryPolicy] = None,
        backend_factory: Optional[Callable[[Path], StorageBackend]] = None,
        zero_copy: bool = True,
    ) -> None:
        self.path = Path(path)
        self.engine = engine if engine is not None else default_engine()
        self.verify_checksums = verify_checksums
        #: Whether per-copy readers may serve payloads zero-copy (mmap).
        self.zero_copy = bool(zero_copy)
        #: Retry policy handed to every per-copy reader (transient faults).
        self.retry = retry if retry is not None else RetryPolicy.none()
        #: Optional hook mapping a copy's path to the backend to open it
        #: through — the fault-injection seam
        #: (:class:`~repro.archive.backend.FaultInjectionBackend`).
        self.backend_factory = backend_factory
        self.manifest = _read_manifest(self.path)
        self.spec = CodecSpec.from_json(self.manifest.spec_json)
        self.router = router_for_manifest(self.manifest)
        self.shard_paths: List[Path] = [
            self.path.parent / name for name in self.manifest.shard_names
        ]
        replica_map = self.manifest.replica_names or ((),) * len(self.shard_paths)
        #: Per shard: every copy's path, primary first.
        self.copy_paths: List[List[Path]] = [
            [primary, *(self.path.parent / name for name in replicas)]
            for primary, replicas in zip(self.shard_paths, replica_map)
        ]
        #: Routed reads that had to switch to another copy after damage.
        self.failovers = 0
        #: Distributed verifies routed to each shard's placed worker, and
        #: verifies that fell back to any-worker routing.
        self.placement_hits = 0
        self.placement_fallbacks = 0
        self._readers: Dict[int, ArchiveReader] = {}
        self._active: Dict[int, int] = {}
        self._retired_bytes = 0
        self._retired_zero_copy = 0
        self._retry_count = 0
        self._lock = threading.RLock()
        self._entries: Optional[List[Tuple[int, FrameInfo]]] = None

    # -- shard plumbing -----------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.shard_paths)

    @property
    def replicas(self) -> int:
        """Replicas per shard (0 for an unreplicated set)."""
        return self.manifest.replicas

    @property
    def opened_shards(self) -> List[int]:
        """Indices of the shards actually opened so far (lazy evidence)."""
        with self._lock:
            return sorted(self._readers)

    @property
    def bytes_read(self) -> int:
        """Total payload bytes read across every copy ever opened."""
        with self._lock:
            return self._retired_bytes + sum(
                reader.bytes_read for reader in self._readers.values()
            )

    @property
    def zero_copy_reads(self) -> int:
        """Payload reads served zero-copy across every copy ever opened."""
        with self._lock:
            return self._retired_zero_copy + sum(
                reader.zero_copy_reads for reader in self._readers.values()
            )

    @property
    def retries(self) -> int:
        """Transient faults absorbed by retry across every copy touched —
        including copies whose open ultimately failed (their reader never
        existed, but the absorbed faults still count)."""
        with self._lock:
            return self._retry_count

    def _note_retry(self, exc: BaseException) -> None:
        with self._lock:
            self._retry_count += 1

    def _open_copy(self, shard: int, copy: int) -> ArchiveReader:
        path = self.copy_paths[shard][copy]
        target = self.backend_factory(path) if self.backend_factory else path
        try:
            return ArchiveReader(
                target,
                engine=self.engine,
                verify_checksums=self.verify_checksums,
                retry=self.retry,
                on_retry=self._note_retry,
                zero_copy=self.zero_copy,
            )
        except FileNotFoundError as exc:
            # The manifest names this copy, so its absence is set damage (a
            # shard file deleted mid-session), not a configuration mistake:
            # surface it in the archive taxonomy so the failure ladder
            # (failover here, 503 in the HTTP service) handles it.
            raise TruncatedArchiveError(
                f"shard copy {path.name} is missing (the set manifest "
                "names it)"
            ) from exc

    def _fail_over(self, shard: int, failed_copy: int) -> bool:
        """After damage on ``failed_copy``, advance the shard to its next
        copy; ``False`` when there is no other copy to go to.  Must be
        called under the lock; no-op if another thread already switched."""
        copies = self.copy_paths[shard]
        if len(copies) == 1:
            return False
        if self._active.get(shard, 0) == failed_copy:
            reader = self._readers.pop(shard, None)
            if reader is not None:
                self._retire(reader)
            self._active[shard] = (failed_copy + 1) % len(copies)
            self.failovers += 1
        return True

    def _retire(self, reader: ArchiveReader) -> None:
        self._retired_bytes += reader.bytes_read
        self._retired_zero_copy += reader.zero_copy_reads
        try:
            reader.close()
        except Exception:  # pragma: no cover - best-effort close of a dead copy
            pass

    def _shard_op(self, shard: int, op: Callable[[ArchiveReader], object]):
        """Run ``op`` against one shard, failing over across its copies.

        Damage (:data:`_FAILOVER_ERRORS`) on the active copy — at open or
        mid-operation — drops it and retries the operation on the next
        copy, at most once per copy; anything else (``KeyError`` for a
        missing frame, configuration ``ValueError``) propagates untouched.
        """
        attempts = len(self.copy_paths[shard])
        last_exc: Optional[BaseException] = None
        for _ in range(attempts):
            with self._lock:
                copy = self._active.setdefault(shard, 0)
                reader = self._readers.get(shard)
                if reader is None:
                    try:
                        reader = self._open_copy(shard, copy)
                    except self._FAILOVER_ERRORS as exc:
                        last_exc = exc
                        if not self._fail_over(shard, copy):
                            raise
                        continue
                    self._readers[shard] = reader
            try:
                return op(reader)
            except self._FAILOVER_ERRORS as exc:
                last_exc = exc
                with self._lock:
                    if not self._fail_over(shard, copy):
                        raise
        raise last_exc

    def _reader(self, shard: int) -> ArchiveReader:
        """The shard's currently active copy reader (opening it if needed)."""
        return self._shard_op(shard, lambda reader: reader)

    def _all_entries(self) -> List[Tuple[int, FrameInfo]]:
        """Every frame of the set as ``(shard, entry)``, name-sorted."""
        with self._lock:
            if self._entries is None:
                pairs = [
                    (shard, entry)
                    for shard in range(self.shard_count)
                    for entry in self._shard_op(shard, lambda r: list(r.frames))
                ]
                pairs.sort(key=lambda pair: pair[1].name)
                self._entries = pairs
            return self._entries

    # -- listing ------------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._all_entries())

    def __iter__(self) -> Iterator[FrameInfo]:
        return (entry for _, entry in self._all_entries())

    @property
    def frames(self) -> List[FrameInfo]:
        return [entry for _, entry in self._all_entries()]

    def names(self) -> List[str]:
        return [entry.name for _, entry in self._all_entries()]

    @property
    def compressed_bytes(self) -> int:
        return sum(entry.length for _, entry in self._all_entries())

    @property
    def raw_bytes(self) -> int:
        return sum(entry.raw_bytes for _, entry in self._all_entries())

    # -- routed access ------------------------------------------------------------------
    def _locate(self, key: FrameKey) -> Tuple[int, FrameInfo]:
        """Resolve a key to ``(shard, entry)``; string keys route directly
        (touching only the target shard), integers index the name-sorted
        set listing, and :class:`FrameInfo` objects route by their name."""
        if isinstance(key, FrameInfo):
            key = key.name
        if isinstance(key, str):
            shard = self.router.route(key)
            return shard, self._shard_op(shard, lambda r: r.find(key))
        if isinstance(key, (int, np.integer)):
            entries = self._all_entries()
            try:
                return entries[key]
            except IndexError as exc:
                raise KeyError(
                    f"archive set has {len(entries)} frames, no index {key}"
                ) from exc
        raise TypeError(f"cannot resolve frame key {key!r}")

    def find(self, key: FrameKey) -> FrameInfo:
        """Resolve a frame by name, set-wide index, or identity."""
        return self._locate(key)[1]

    def read_payload(self, key: FrameKey) -> bytes:
        shard, entry = self._locate(key)
        return self._shard_op(shard, lambda r: r.read_payload(entry))

    def read_payload_slice(self, key: FrameKey, start: int, length: int) -> memoryview:
        """Routed byte-range read within one frame's payload (see
        :meth:`ArchiveReader.read_payload_slice`); only the target shard is
        touched and only ``length`` payload bytes are read."""
        shard, entry = self._locate(key)
        return self._shard_op(
            shard, lambda r: r.read_payload_slice(entry, start, length)
        )

    def read_stream(self, key: FrameKey) -> CompressedStream:
        shard, entry = self._locate(key)
        return self._shard_op(shard, lambda r: r.read_stream(entry))

    def spec_for(self, key: FrameKey) -> CodecSpec:
        shard, entry = self._locate(key)
        return self._shard_op(shard, lambda r: r.spec_for(entry))

    def decode(self, key: FrameKey) -> np.ndarray:
        """Random-access decode: route by name, open one shard, read one
        payload.  On a replicated set a damaged copy is retried on its
        replica transparently (``failovers`` counts each switch); index
        entries carry across copies because every copy is byte-identical.
        """
        shard, entry = self._locate(key)
        return self._shard_op(shard, lambda r: r.decode(entry))

    def read_preview(self, key: FrameKey, at_scale: int) -> np.ndarray:
        """Routed preview decode (see :meth:`ArchiveReader.read_preview`):
        on a subband-major set only the strict byte prefix of the target
        frame's payload is read, with the same failover ladder as
        :meth:`decode`."""
        shard, entry = self._locate(key)
        return self._shard_op(shard, lambda r: r.read_preview(entry, at_scale))

    def read_roi(self, key: FrameKey, y0: int, y1: int) -> np.ndarray:
        """Routed row-band decode (see :meth:`ArchiveReader.read_roi`)."""
        shard, entry = self._locate(key)
        return self._shard_op(shard, lambda r: r.read_roi(entry, y0, y1))

    # -- bulk path ----------------------------------------------------------------------
    def to_batch(self, keys: Optional[Sequence[FrameKey]] = None) -> CompressedBatch:
        """Reassemble (selected) stored streams into one pipeline batch,
        in name-sorted set order."""
        located = (
            [self._locate(key) for key in keys]
            if keys is not None
            else list(self._all_entries())
        )
        configs = {
            (e.codec, e.bit_depth, e.bank_name, e.use_rle) for _, e in located
        }
        if len(configs) > 1:
            raise ValueError(
                "frames use mixed codec configurations; decode them "
                f"individually instead ({sorted(configs)})"
            )
        if located:
            first_shard, first_entry = located[0]
            spec = self._shard_op(first_shard, lambda r: r.spec_for(first_entry))
        else:
            spec = self.spec.replace(engine=self.engine)
        return CompressedBatch(
            codec=spec.codec,
            engine=spec.engine,
            codec_options=spec.codec_kwargs(),
            streams=[
                self._shard_op(shard, lambda r, e=entry: r.read_stream(e))
                for shard, entry in located
            ],
            stats=PipelineStats(),
            spec=spec,
        )

    def decode_all(
        self, keys: Optional[Sequence[FrameKey]] = None, workers: int = 1
    ) -> Tuple[List[np.ndarray], PipelineStats]:
        """Decode every (selected) frame through the batched pipeline.

        With ``workers`` > 1 the streams are materialised to bytes first —
        zero-copy views cannot cross the process-pool boundary.
        """
        batch = self.to_batch(keys)
        if workers != 1:
            for stream in batch.streams:
                materialize_stream(stream)
        return decompress_frames(batch, workers=workers)

    # -- integrity ----------------------------------------------------------------------
    def verify(
        self, deep: bool = False, workers: int = 1, strict: bool = True
    ) -> VerifyReport:
        """Verify the set copy by copy, isolating damage.

        Every shard *copy* (primary and replicas) is checked (checksums;
        with ``deep`` also a full decode of every frame) even when an
        earlier one fails, so one truncated or corrupted copy never hides
        the health of the rest.  Healthy copies of one shard are also
        cross-checked against each other: a copy that is individually
        valid but diverged from its most complete sibling (a stale replica
        left by a torn fan-out append) is reported as damaged too, because
        it must not serve reads or source a repair.  ``workers`` > 1
        verifies copies concurrently, one worker process per copy; socket
        workers (``"host:port,host:port"`` or a
        :class:`~repro.coding.netexec.WorkerPool`) verify copies on remote
        workers instead, routed by the manifest's placement map when it
        has one (the workers must see the set's filesystem, like the fork
        pool's processes).  ``backend_factory`` forces the serial path —
        injected backends cross neither process nor socket boundaries.

        Returns a :class:`VerifyReport` with set totals (counting each
        shard's authoritative copy once) plus ``shards``, ``copies``, a
        ``failures`` mapping (copy file name → error) and ``shard_status``
        (primary shard file name → ``"ok"``/``"damaged"``).  With
        ``strict`` (the default) any damage raises
        :class:`ArchiveIntegrityError` naming the damaged shards.  The
        per-copy failure report is exactly what
        :func:`repro.archive.replication.repair_set` consumes to rebuild
        damaged copies from their healthy siblings.
        """
        copy_names: List[Tuple[int, str]] = []  # (shard, copy file name)
        replica_map = self.manifest.replica_names or ((),) * self.shard_count
        for shard, primary in enumerate(self.manifest.shard_names):
            for name in (primary, *replica_map[shard]):
                copy_names.append((shard, name))
        targets = [
            self.backend_factory(self.path.parent / name)
            if self.backend_factory
            else str(self.path.parent / name)
            for _, name in copy_names
        ]
        args = [
            (target, deep, self.engine, self.verify_checksums) for target in targets
        ]
        if is_socket_workers(workers) and self.backend_factory is None:
            results = self._verify_remote(copy_names, args, workers)
        elif (
            not is_socket_workers(workers)
            and workers > 1
            and len(args) > 1
            and self.backend_factory is None
        ):
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(
                max_workers=min(workers, len(args)), mp_context=pool_context()
            ) as pool:
                results = list(pool.map(_verify_copy_worker, *zip(*args)))
        else:
            results = [_verify_copy_worker(*arg) for arg in args]

        by_shard: Dict[int, List[Tuple[str, Dict]]] = {}
        for (shard, name), result in zip(copy_names, results):
            by_shard.setdefault(shard, []).append((name, result))

        frames = payload_bytes = 0
        failures: Dict[str, str] = {}
        shard_status: Dict[str, str] = {}
        for shard, primary in enumerate(self.manifest.shard_names):
            copies = by_shard[shard]
            healthy = [(name, res) for name, res in copies if res["ok"]]
            for name, res in copies:
                if not res["ok"]:
                    failures[name] = res["error"]
            if healthy:
                # The authoritative copy: most frames wins (appends are
                # monotone), primary wins ties.  Valid-but-diverged
                # siblings are damage, not an alternate truth.
                auth_name, auth = max(healthy, key=lambda item: item[1]["frames"])
                for name, res in healthy:
                    if res["digest"] != auth["digest"]:
                        failures[name] = (
                            f"StaleCopyError: copy holds {res['frames']} frames, "
                            f"diverged from {auth_name} ({auth['frames']} frames)"
                        )
                frames += auth["frames"]
                payload_bytes += auth["payload_bytes"]
            damaged = [name for name, _ in copies if name in failures]
            shard_status[primary] = "damaged" if damaged else "ok"
        report = VerifyReport(
            frames=frames,
            payload_bytes=payload_bytes,
            deep=deep,
            shards=self.shard_count,
            copies=len(copy_names),
            failures=failures,
            shard_status=shard_status,
        )
        if strict and failures:
            damaged_shards = sorted(
                name for name, status in shard_status.items() if status == "damaged"
            )
            raise ArchiveIntegrityError(
                f"{len(damaged_shards)} of {self.shard_count} shards failed "
                f"verification ({', '.join(damaged_shards)}); the other shards "
                "verified clean"
            )
        return report

    def _verify_remote(
        self,
        copy_names: List[Tuple[int, str]],
        args: List[Tuple],
        workers,
    ) -> List[Dict]:
        """Verify every copy on socket workers, one ``verify_copy`` RPC per
        copy, routed to the copy's shard's placed node (any-worker when
        unplaced or the node is down — ``placement_fallbacks`` counts the
        misses)."""
        from concurrent.futures import ThreadPoolExecutor

        from ..coding.netexec import WorkerPool

        pool, owns = WorkerPool.from_any(workers)
        placement = self.manifest.placement
        try:
            live = pool.ensure_connected()

            def run_copy(item: Tuple[Tuple[int, str], Tuple]) -> Dict:
                (shard, _name), (target, deep, engine, verify_checksums) = item
                preferred = placement.get(self.manifest.shard_names[shard])
                result, node = pool.call(
                    "verify_copy",
                    {
                        "target": target,
                        "deep": deep,
                        "engine": engine,
                        "verify_checksums": verify_checksums,
                    },
                    preferred_node=preferred,
                )
                with self._lock:
                    if preferred is not None:
                        if node == preferred:
                            self.placement_hits += 1
                        else:
                            self.placement_fallbacks += 1
                return result

            with ThreadPoolExecutor(
                max_workers=min(len(args), len(live))
            ) as threads:
                return list(threads.map(run_copy, zip(copy_names, args)))
        finally:
            if owns:
                pool.disconnect()

    # -- lifecycle ----------------------------------------------------------------------
    def close(self) -> None:
        for reader in self._readers.values():
            reader.close()
        self._readers.clear()

    def __enter__(self) -> "ShardedArchiveReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
