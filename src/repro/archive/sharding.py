"""Sharded archive sets: one codec configuration spanning N container files.

A single container file caps an archive at one file and one filesystem, and
caps parallel ingest at "many workers funnel into one writer".  A *sharded
archive set* lifts both: a small manifest file (byte layout in
:mod:`repro.archive.format`) names N ordinary single-file containers — the
shards — plus a deterministic **shard router** that maps every frame name
to exactly one shard.  Each shard is a complete, self-contained archive
(the existing tools read it unchanged), and the set-level API mirrors the
single-archive API:

``ShardedArchiveWriter``
    Creates or appends to a set; :meth:`~ShardedArchiveWriter.append_batch`
    with ``workers`` > 1 runs **one end-to-end worker per shard** — each
    worker process compresses *and writes* its own shard, so ingest scales
    without a shared writer bottleneck — and produces byte-identical shard
    files to the serial path.
``ShardedArchiveReader``
    Lists the whole set, randomly accesses one frame by routing its name to
    its shard (only that shard is opened and only that payload is read —
    the per-shard ``bytes_read`` counters are the evidence), bulk-decodes
    through the batched pipeline, and verifies shard by shard with damage
    *isolated*: a truncated or corrupted shard is reported while every
    healthy shard still verifies and serves reads.

Routing is by frame *name*, never by position, so the assignment is stable
across appends and processes:

* ``hash`` (default): CRC-32 of the UTF-8 name modulo the shard count —
  stateless and uniform;
* ``range``: lexicographic ranges split by ``shards - 1`` boundary names
  (frame ``name`` goes to the first shard whose boundary exceeds it), for
  sets whose names encode a meaningful order (series, dates).

Because compression is per-frame deterministic, packing the same frames
into 1 shard or N shards yields **identical per-frame payload bytes**; only
their grouping differs.  The set-level frame order (listing, bulk decode)
is lexicographic by name, which is likewise shard-count independent —
``tests/archive/test_sharding.py`` proves both invariances.
"""

from __future__ import annotations

import time
import zlib
from bisect import bisect_right
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..coding.executor import pool_context
from ..coding.pipeline import (
    CompressedBatch,
    PipelineStats,
    compress_frames,
    decompress_frames,
)
from ..coding.spec import CodecSpec, reject_spec_overrides
from .format import (
    MANIFEST_MAGIC,
    MANIFEST_VERSION,
    ArchiveError,
    ArchiveFormatError,
    ArchiveIntegrityError,
    FrameInfo,
    ShardManifest,
    pack_manifest,
    unpack_manifest,
)
from .reader import ArchiveReader, FrameKey, VerifyReport
from .serialize import CompressedStream
from .writer import ArchiveWriter

__all__ = [
    "ShardRouter",
    "HashRouter",
    "RangeRouter",
    "make_router",
    "router_for_manifest",
    "shard_file_names",
    "is_sharded",
    "open_archive",
    "ShardedArchiveWriter",
    "ShardedArchiveReader",
]

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Routers
# ---------------------------------------------------------------------------

class ShardRouter:
    """Deterministic frame-name → shard-index mapping."""

    kind = "router"

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = int(shard_count)

    def route(self, name: str) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(shards={self.shard_count})"


class HashRouter(ShardRouter):
    """CRC-32 of the UTF-8 frame name modulo the shard count.

    CRC-32 (not Python's ``hash``) so the assignment is identical across
    processes, interpreter runs and platforms — a requirement for a mapping
    that is baked into file placement.
    """

    kind = "hash"

    def route(self, name: str) -> int:
        return (zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF) % self.shard_count


class RangeRouter(ShardRouter):
    """Lexicographic range sharding by ``shards - 1`` sorted boundary names.

    Frame ``name`` routes to ``bisect_right(boundaries, name)``: names
    strictly below the first boundary go to shard 0, and so on.  Useful
    when frame names encode series order and locality per shard matters.
    """

    kind = "range"

    def __init__(self, shard_count: int, boundaries: Sequence[str]) -> None:
        super().__init__(shard_count)
        self.boundaries = tuple(boundaries)
        if len(self.boundaries) != shard_count - 1:
            raise ValueError(
                f"range router over {shard_count} shards needs "
                f"{shard_count - 1} boundaries, got {len(self.boundaries)}"
            )
        if list(self.boundaries) != sorted(self.boundaries):
            raise ValueError("range boundaries must be sorted")

    def route(self, name: str) -> int:
        return bisect_right(self.boundaries, name)


def make_router(
    kind: str, shard_count: int, boundaries: Sequence[str] = ()
) -> ShardRouter:
    """Build a router by manifest kind name."""
    if kind == "hash":
        if boundaries:
            raise ValueError("hash router takes no boundaries")
        return HashRouter(shard_count)
    if kind == "range":
        return RangeRouter(shard_count, boundaries)
    raise ValueError(f"unknown router {kind!r} (expected 'hash' or 'range')")


def router_for_manifest(manifest: ShardManifest) -> ShardRouter:
    """The router a stored manifest describes."""
    return make_router(manifest.router, len(manifest.shard_names), manifest.boundaries)


# ---------------------------------------------------------------------------
# Set layout helpers
# ---------------------------------------------------------------------------

def shard_file_names(manifest_path: PathLike, shard_count: int) -> List[str]:
    """Default shard file names for a manifest: ``<stem>.shard<i>.dwta``."""
    stem = Path(manifest_path).stem
    return [f"{stem}.shard{i:03d}.dwta" for i in range(shard_count)]


def is_sharded(path: PathLike) -> bool:
    """Whether ``path`` is a shard-set manifest (checked by magic bytes)."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MANIFEST_MAGIC)) == MANIFEST_MAGIC
    except OSError:
        return False


def open_archive(
    path: PathLike, engine: str = "fast", verify_checksums: bool = True
) -> Union[ArchiveReader, "ShardedArchiveReader"]:
    """Open a single archive *or* a sharded set, decided by the file magic.

    This is what lets the CLI (``list``/``extract``/``verify``) take either
    kind of target transparently.
    """
    if is_sharded(path):
        return ShardedArchiveReader(path, engine=engine, verify_checksums=verify_checksums)
    return ArchiveReader(path, engine=engine, verify_checksums=verify_checksums)


def _read_manifest(path: Path) -> ShardManifest:
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        raise ArchiveFormatError(f"no shard-set manifest at {path}") from None
    return unpack_manifest(data)


# ---------------------------------------------------------------------------
# Worker entry points (module level so they pickle for the process pool)
# ---------------------------------------------------------------------------

def _append_shard_worker(
    path: str, spec: CodecSpec, frames: List[np.ndarray], names: List[str]
) -> Tuple[List[FrameInfo], PipelineStats]:
    """One end-to-end shard worker: compress *and* write one shard's frames."""
    with ArchiveWriter.append(path, spec=spec) as writer:
        entries = writer.append_batch(frames, names=names)
        return entries, writer.stats


def _verify_shard_worker(
    path: str, deep: bool, engine: str, verify_checksums: bool
) -> Dict:
    """Verify one whole shard, mapping any damage to a failure record."""
    try:
        with ArchiveReader(path, engine=engine, verify_checksums=verify_checksums) as reader:
            report = reader.verify(deep=deep)
            return {
                "ok": True,
                "frames": report["frames"],
                "payload_bytes": report["payload_bytes"],
            }
    except (ArchiveError, OSError) as exc:
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------

class ShardedArchiveWriter:
    """Writes a sharded archive set; use :meth:`create` or :meth:`append`.

    The set shares one :class:`~repro.coding.spec.CodecSpec` (stored in the
    manifest, so even empty shards know their configuration) and one router.
    Frames are routed by name; each shard is an ordinary
    :class:`~repro.archive.writer.ArchiveWriter` container and inherits its
    crash-safety: an interrupted append leaves every shard either in its
    pre-append state or finalised with its new frames — never torn.
    """

    def __init__(
        self,
        path: PathLike,
        manifest: ShardManifest,
        spec: CodecSpec,
        names: set,
        total: int,
        workers: int = 1,
    ) -> None:
        self.path = Path(path)
        self.manifest = manifest
        #: The set-level compression configuration (from the manifest).
        self.spec = spec
        self.router = router_for_manifest(manifest)
        #: Default worker count for :meth:`append_batch` (1 = serial).
        self.workers = int(workers)
        #: Aggregated pipeline stats of every append on this writer.
        self.stats = PipelineStats()
        self.shard_paths: List[Path] = [
            self.path.parent / name for name in manifest.shard_names
        ]
        self._writers: Dict[int, ArchiveWriter] = {}
        self._names = names
        self._total = total
        self._closed = False

    # -- construction -------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: PathLike,
        shards: int = 2,
        router: str = "hash",
        boundaries: Sequence[str] = (),
        spec: Optional[CodecSpec] = None,
        overwrite: bool = False,
        workers: int = 1,
        codec: Optional[str] = None,
        scales: Optional[int] = None,
        engine: Optional[str] = None,
        **codec_options,
    ) -> "ShardedArchiveWriter":
        """Create a new set: N empty finalised shards plus the manifest.

        ``path`` is the manifest file (conventionally ``*.dwts``); shard
        containers are created next to it.  Configuration defaults match
        :meth:`ArchiveWriter.create`; ``spec`` and the legacy keywords are
        mutually exclusive, as everywhere else.
        """
        if spec is None:
            spec = CodecSpec.from_kwargs(
                codec=codec if codec is not None else "s-transform",
                scales=scales if scales is not None else 4,
                engine=engine if engine is not None else "fast",
                **codec_options,
            )
        else:
            reject_spec_overrides(codec_options, codec=codec, scales=scales, engine=engine)
        path = Path(path)
        if path.exists() and not overwrite:
            raise FileExistsError(
                f"shard-set manifest {path} already exists (pass overwrite=True)"
            )
        manifest = ShardManifest(
            version=MANIFEST_VERSION,
            router=router,
            shard_names=tuple(shard_file_names(path, shards)),
            spec_json=spec.to_json(),
            boundaries=tuple(boundaries),
        )
        router_for_manifest(manifest)  # validate router/boundaries up front
        # Every shard is born a valid (empty, finalised) archive, so the set
        # is complete and readable from the instant the manifest lands.
        for name in manifest.shard_names:
            ArchiveWriter.create(path.parent / name, spec=spec, overwrite=overwrite).close()
        path.write_bytes(pack_manifest(manifest))
        return cls(path, manifest, spec, names=set(), total=0, workers=workers)

    @classmethod
    def append(
        cls, path: PathLike, workers: int = 1, engine: Optional[str] = None
    ) -> "ShardedArchiveWriter":
        """Open an existing set to add frames; configuration comes from the
        manifest, so appends always match how the set was created.
        ``engine`` may override the entropy-coding engine — an execution
        choice, not a format one (streams are byte-identical either way)."""
        path = Path(path)
        manifest = _read_manifest(path)
        spec = CodecSpec.from_json(manifest.spec_json)
        if engine is not None:
            spec = spec.replace(engine=engine)
        names: set = set()
        total = 0
        for shard_name in manifest.shard_names:
            with ArchiveReader(path.parent / shard_name) as reader:
                names.update(reader.names())
                total += len(reader)
        return cls(path, manifest, spec, names=names, total=total, workers=workers)

    # -- shard plumbing -----------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.shard_paths)

    def __len__(self) -> int:
        return self._total

    @property
    def frame_names(self) -> List[str]:
        """Names of every frame stored in the set so far."""
        return sorted(self._names)

    def _writer(self, shard: int) -> ArchiveWriter:
        if shard not in self._writers:
            self._writers[shard] = ArchiveWriter.append(
                self.shard_paths[shard], spec=self.spec
            )
        return self._writers[shard]

    def _flush_shards(self) -> None:
        """Finalise any in-process shard writers (before pooled appends)."""
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    def _resolve_names(
        self, count: int, names: Optional[Sequence[str]]
    ) -> List[str]:
        if names is None:
            resolved = []
            for offset in range(count):
                name = f"frame_{self._total + offset:05d}"
                while name in self._names or name in resolved:
                    name += "_"
                resolved.append(name)
            return resolved
        if len(names) != count:
            raise ValueError(f"{len(names)} names for {count} frames")
        seen = set()
        for name in names:
            if name in self._names or name in seen:
                raise ValueError(f"archive set already has a frame named {name!r}")
            seen.add(name)
        return list(names)

    # -- adding frames ------------------------------------------------------------------
    def add_stream(self, stream: CompressedStream, name: Optional[str] = None) -> FrameInfo:
        """Archive one already-compressed stream, routed to its shard.

        This is the streaming-ingest entry point: frames arrive one at a
        time (:mod:`repro.archive.ingest`) and flow straight into the right
        shard's writer without any set-level buffering.
        """
        if self._closed:
            raise ValueError("sharded archive writer is closed")
        (name,) = self._resolve_names(1, None if name is None else [name])
        entry = self._writer(self.router.route(name)).add_stream(stream, name)
        self._names.add(name)
        self._total += 1
        return entry

    def append_batch(
        self,
        frames: Sequence[np.ndarray],
        names: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
    ) -> List[FrameInfo]:
        """Compress and archive ``frames``, one pipeline run per shard.

        Serially the shards are filled one after another; with ``workers``
        > 1 every non-empty shard gets its own end-to-end worker process
        (compress + write), the true "one worker per shard" scale-out.  The
        shard files are byte-identical either way.  Returns the new index
        entries in input order (``entry.index`` is shard-local).
        """
        if self._closed:
            raise ValueError("sharded archive writer is closed")
        frames = [np.asarray(frame) for frame in frames]
        workers = self.workers if workers is None else int(workers)
        resolved = self._resolve_names(len(frames), names)
        groups: Dict[int, List[int]] = {}
        for position, name in enumerate(resolved):
            groups.setdefault(self.router.route(name), []).append(position)
        entries: List[Optional[FrameInfo]] = [None] * len(frames)
        if workers > 1 and len(groups) > 1:
            self._run_shard_pool(groups, frames, resolved, entries, workers)
        else:
            for shard in sorted(groups):
                positions = groups[shard]
                batch = compress_frames(
                    [frames[i] for i in positions], spec=self.spec
                )
                shard_entries = self._writer(shard).add_batch(
                    batch, names=[resolved[i] for i in positions]
                )
                for position, entry in zip(positions, shard_entries):
                    entries[position] = entry
                self.stats.merge(batch.stats)
        self._names.update(resolved)
        self._total += len(frames)
        return [entry for entry in entries if entry is not None]

    def add_frames(
        self,
        frames: Sequence[np.ndarray],
        names: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
    ) -> List[FrameInfo]:
        """Alias of :meth:`append_batch` (single-archive API parity)."""
        return self.append_batch(frames, names=names, workers=workers)

    def _run_shard_pool(
        self,
        groups: Dict[int, List[int]],
        frames: List[np.ndarray],
        names: List[str],
        entries: List[Optional[FrameInfo]],
        workers: int,
    ) -> None:
        """One worker per shard: each process compresses and writes its shard."""
        from concurrent.futures import ProcessPoolExecutor

        # Workers reopen the shard files, so in-process writers must have
        # finalised first (their frames stay; this is an ordinary close).
        self._flush_shards()
        shard_order = sorted(groups)
        began = time.perf_counter()
        with ProcessPoolExecutor(
            max_workers=min(workers, len(shard_order)), mp_context=pool_context()
        ) as pool:
            futures = {
                shard: pool.submit(
                    _append_shard_worker,
                    str(self.shard_paths[shard]),
                    self.spec,
                    [frames[i] for i in groups[shard]],
                    [names[i] for i in groups[shard]],
                )
                for shard in shard_order
            }
            results = {shard: future.result() for shard, future in futures.items()}
        wall = time.perf_counter() - began
        merged = PipelineStats()
        for shard in shard_order:
            shard_entries, shard_stats = results[shard]
            for position, entry in zip(groups[shard], shard_entries):
                entries[position] = entry
            merged.merge(shard_stats)
        merged.workers = min(workers, len(shard_order))
        merged.wall_seconds = wall
        self.stats.merge(merged)

    # -- finalisation -------------------------------------------------------------------
    def close(self) -> None:
        """Finalise every open shard writer."""
        if self._closed:
            return
        self._flush_shards()
        self._closed = True

    def __enter__(self) -> "ShardedArchiveWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------

class ShardedArchiveReader:
    """Opens a sharded set for listing, routed random access and verification.

    Shards open lazily: random access by *name* routes through the manifest
    router and touches exactly one shard file — ``opened_shards`` and the
    summed ``bytes_read`` counter prove it.  Set-level listing and bulk
    decoding order frames lexicographically by name, which is independent
    of the shard count (so re-sharding a set never changes what
    :meth:`decode_all` returns).
    """

    def __init__(
        self, path: PathLike, engine: str = "fast", verify_checksums: bool = True
    ) -> None:
        self.path = Path(path)
        self.engine = engine
        self.verify_checksums = verify_checksums
        self.manifest = _read_manifest(self.path)
        self.spec = CodecSpec.from_json(self.manifest.spec_json)
        self.router = router_for_manifest(self.manifest)
        self.shard_paths: List[Path] = [
            self.path.parent / name for name in self.manifest.shard_names
        ]
        self._readers: Dict[int, ArchiveReader] = {}
        self._entries: Optional[List[Tuple[int, FrameInfo]]] = None

    # -- shard plumbing -----------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.shard_paths)

    @property
    def opened_shards(self) -> List[int]:
        """Indices of the shards actually opened so far (lazy evidence)."""
        return sorted(self._readers)

    @property
    def bytes_read(self) -> int:
        """Total payload bytes read across every opened shard."""
        return sum(reader.bytes_read for reader in self._readers.values())

    def _reader(self, shard: int) -> ArchiveReader:
        if shard not in self._readers:
            self._readers[shard] = ArchiveReader(
                self.shard_paths[shard],
                engine=self.engine,
                verify_checksums=self.verify_checksums,
            )
        return self._readers[shard]

    def _all_entries(self) -> List[Tuple[int, FrameInfo]]:
        """Every frame of the set as ``(shard, entry)``, name-sorted."""
        if self._entries is None:
            pairs = [
                (shard, entry)
                for shard in range(self.shard_count)
                for entry in self._reader(shard).frames
            ]
            pairs.sort(key=lambda pair: pair[1].name)
            self._entries = pairs
        return self._entries

    # -- listing ------------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._all_entries())

    def __iter__(self) -> Iterator[FrameInfo]:
        return (entry for _, entry in self._all_entries())

    @property
    def frames(self) -> List[FrameInfo]:
        return [entry for _, entry in self._all_entries()]

    def names(self) -> List[str]:
        return [entry.name for _, entry in self._all_entries()]

    @property
    def compressed_bytes(self) -> int:
        return sum(entry.length for _, entry in self._all_entries())

    @property
    def raw_bytes(self) -> int:
        return sum(entry.raw_bytes for _, entry in self._all_entries())

    # -- routed access ------------------------------------------------------------------
    def _locate(self, key: FrameKey) -> Tuple[int, FrameInfo]:
        """Resolve a key to ``(shard, entry)``; string keys route directly
        (touching only the target shard), integers index the name-sorted
        set listing, and :class:`FrameInfo` objects route by their name."""
        if isinstance(key, FrameInfo):
            key = key.name
        if isinstance(key, str):
            shard = self.router.route(key)
            return shard, self._reader(shard).find(key)
        if isinstance(key, (int, np.integer)):
            entries = self._all_entries()
            try:
                return entries[key]
            except IndexError as exc:
                raise KeyError(
                    f"archive set has {len(entries)} frames, no index {key}"
                ) from exc
        raise TypeError(f"cannot resolve frame key {key!r}")

    def find(self, key: FrameKey) -> FrameInfo:
        """Resolve a frame by name, set-wide index, or identity."""
        return self._locate(key)[1]

    def read_payload(self, key: FrameKey) -> bytes:
        shard, entry = self._locate(key)
        return self._reader(shard).read_payload(entry)

    def read_stream(self, key: FrameKey) -> CompressedStream:
        shard, entry = self._locate(key)
        return self._reader(shard).read_stream(entry)

    def spec_for(self, key: FrameKey) -> CodecSpec:
        shard, entry = self._locate(key)
        return self._reader(shard).spec_for(entry)

    def decode(self, key: FrameKey) -> np.ndarray:
        """Random-access decode: route by name, open one shard, read one
        payload."""
        shard, entry = self._locate(key)
        return self._reader(shard).decode(entry)

    # -- bulk path ----------------------------------------------------------------------
    def to_batch(self, keys: Optional[Sequence[FrameKey]] = None) -> CompressedBatch:
        """Reassemble (selected) stored streams into one pipeline batch,
        in name-sorted set order."""
        located = (
            [self._locate(key) for key in keys]
            if keys is not None
            else list(self._all_entries())
        )
        configs = {
            (e.codec, e.bit_depth, e.bank_name, e.use_rle) for _, e in located
        }
        if len(configs) > 1:
            raise ValueError(
                "frames use mixed codec configurations; decode them "
                f"individually instead ({sorted(configs)})"
            )
        if located:
            spec = self._reader(located[0][0]).spec_for(located[0][1])
        else:
            spec = self.spec.replace(engine=self.engine)
        return CompressedBatch(
            codec=spec.codec,
            engine=spec.engine,
            codec_options=spec.codec_kwargs(),
            streams=[self._reader(shard).read_stream(entry) for shard, entry in located],
            stats=PipelineStats(),
            spec=spec,
        )

    def decode_all(
        self, keys: Optional[Sequence[FrameKey]] = None, workers: int = 1
    ) -> Tuple[List[np.ndarray], PipelineStats]:
        """Decode every (selected) frame through the batched pipeline."""
        return decompress_frames(self.to_batch(keys), workers=workers)

    # -- integrity ----------------------------------------------------------------------
    def verify(
        self, deep: bool = False, workers: int = 1, strict: bool = True
    ) -> VerifyReport:
        """Verify the set shard by shard, isolating damage.

        Every shard is checked (checksums; with ``deep`` also a full decode
        of every frame) even when an earlier shard fails, so one truncated
        or corrupted shard never hides the health of the rest.  ``workers``
        > 1 verifies shards concurrently, one worker process per shard.

        Returns a :class:`VerifyReport` with set totals plus ``shards`` and
        a ``failures`` mapping (shard file name → error).  With ``strict``
        (the default) a non-empty ``failures`` raises
        :class:`ArchiveIntegrityError` naming the damaged shards.
        """
        args = [
            (str(path), deep, self.engine, self.verify_checksums)
            for path in self.shard_paths
        ]
        if workers > 1 and len(args) > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(
                max_workers=min(workers, len(args)), mp_context=pool_context()
            ) as pool:
                results = list(pool.map(_verify_shard_worker, *zip(*args)))
        else:
            results = [_verify_shard_worker(*arg) for arg in args]
        frames = payload_bytes = 0
        failures: Dict[str, str] = {}
        for shard_name, result in zip(self.manifest.shard_names, results):
            if result["ok"]:
                frames += result["frames"]
                payload_bytes += result["payload_bytes"]
            else:
                failures[shard_name] = result["error"]
        report = VerifyReport(
            frames=frames,
            payload_bytes=payload_bytes,
            deep=deep,
            shards=self.shard_count,
            failures=failures,
        )
        if strict and failures:
            damaged = ", ".join(sorted(failures))
            raise ArchiveIntegrityError(
                f"{len(failures)} of {self.shard_count} shards failed "
                f"verification ({damaged}); the other shards verified clean"
            )
        return report

    # -- lifecycle ----------------------------------------------------------------------
    def close(self) -> None:
        for reader in self._readers.values():
            reader.close()
        self._readers.clear()

    def __enter__(self) -> "ShardedArchiveReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
