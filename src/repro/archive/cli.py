"""Command-line front end: ``python -m repro.archive <command>``.

Runs the medical-archive scenario end to end against real files:

``pack``
    Compress PGM files (or a synthetic CT series) into an archive, creating
    it or appending to it; ``--workers N`` shards the batch across a
    process pool (byte-identical output).  ``--shards N`` creates a
    *sharded archive set* instead (manifest + N containers, one end-to-end
    worker per shard when ``--workers`` > 1), and ``--stream`` feeds the
    frames through the bounded-queue streaming ingest front end
    (``--queue-depth`` raw frames in memory at most) instead of batching.
``list``
    Show the index table — per-frame codec/filter metadata and sizes —
    without decoding anything (``--json`` for machine-readable output,
    ``--verbose`` to print each frame's stored ``CodecSpec``).
``extract``
    Random-access decode selected frames (by name or index) and write them
    as 16-bit PGM files; only the requested frames' payloads are read —
    on a sharded set, only the routed shard is even opened.
``verify``
    Check every frame's checksum; ``--deep`` additionally decodes every
    frame and cross-checks its geometry against the index; ``--workers N``
    parallelises across shard copies/frames; ``--json`` emits the report
    machine-readably (on a sharded set with a per-shard ``ok``/``damaged``
    status map).  On a sharded set, damage is isolated per shard copy:
    every healthy copy is still verified and reported, and exit status is
    1 iff any shard is damaged.
``repair``
    Self-healing for replicated sets (``pack --shards N --replicas R``):
    verify every copy, rebuild each damaged copy byte-identically from a
    healthy sibling, and with ``--verify`` re-check the whole set.  Exit 0
    iff every shard is healthy afterwards (``--json`` for the per-shard
    ``ok``/``repaired``/``damaged`` statuses).

``serve``
    Run the asyncio HTTP front end (:mod:`repro.archive.server`) on an
    archive or sharded/replicated set: frame decodes with a hot-frame
    cache, ``Range:`` payload slice reads, manifest/stats JSON, streaming
    ingest — ``--readonly`` rejects ingest, ``--cache-bytes 0`` disables
    the cache.  Runs until interrupted (Ctrl-C exits cleanly).

``list``, ``extract``, ``verify``, ``repair`` and ``serve`` accept either a
single container or a shard-set manifest — told apart by their magic bytes.

Exit status is 0 on success and 1 on any archive error (bad format,
truncation, checksum mismatch), reported as a single-line message on
stderr — suitable for scripting an archive's health check.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from ..coding.spec import codec_names
from ..imaging.dataset import archive_dataset
from ..imaging.io_pgm import read_pgm, write_pgm
from .format import LAYOUT_FRAME_MAJOR, LAYOUTS, ArchiveError
from .ingest import ingest_frames
from .serialize import frame_spec
from .sharding import ShardedArchiveReader, ShardedArchiveWriter, is_sharded, open_archive
from .writer import ArchiveWriter

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _workers_value(text: str):
    """A ``--workers`` value: a pool width (``4``) or socket worker
    addresses (``host:port,host:port`` — the work runs on those remote
    workers, see ``python -m repro.netexec worker``)."""
    if ":" in text:
        from ..coding.netexec import parse_worker_addresses

        try:
            parse_worker_addresses(text)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
        return text
    return _positive_int(text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.archive",
        description="Persistent DWT image archive: pack, list, extract, verify.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pack = sub.add_parser("pack", help="compress images into an archive")
    pack.add_argument("archive", help="archive file to create or append to")
    pack.add_argument("inputs", nargs="*", help="input PGM files")
    pack.add_argument("--append", action="store_true", help="append to an existing archive")
    pack.add_argument("--overwrite", action="store_true", help="replace an existing archive")
    pack.add_argument(
        "--codec",
        # Derived from the codec registry at parser-build time, like every
        # other layer's codec validation.
        choices=codec_names(),
        default=None,
        help="compression codec (default: s-transform, the compressive one; "
        "with --append, inherited from the archive's last frame)",
    )
    pack.add_argument(
        "--scales",
        type=int,
        default=None,
        help="decomposition depth (default 4; with --append, inherited)",
    )
    pack.add_argument(
        "--bank",
        default=None,
        help="filter bank for the coefficient codec (default F2)",
    )
    pack.add_argument(
        "--no-rle",
        action="store_true",
        help="disable zero run-length coding (coefficient codec only)",
    )
    pack.add_argument(
        "--bit-depth",
        type=int,
        default=None,
        help="input bit depth (default: inferred from the PGM maxval)",
    )
    pack.add_argument(
        "--engine",
        choices=("fast", "scalar", "turbo"),
        default=None,
        help="entropy-coding engine tier (default: REPRO_ENGINE or fast)",
    )
    pack.add_argument(
        "--layout",
        choices=LAYOUTS,
        default=None,
        help="payload layout (default frame-major; subband-major orders "
        "sections coarsest-first so 'extract --scale k' and the server's "
        "preview endpoint decode from a strict payload prefix; with "
        "--append, inherited from the archive's last frame)",
    )
    pack.add_argument(
        "--workers",
        type=_workers_value,
        default=1,
        help="compress across N worker processes, or across socket workers "
        "given as host:port,host:port (default 1 = serial; streams are "
        "byte-identical in every mode; with --shards, one end-to-end "
        "worker per shard)",
    )
    pack.add_argument(
        "--place",
        default=None,
        metavar="NODE,NODE",
        help="with --shards: store a placement map dealing shards "
        "round-robin onto these worker node ids (manifest v3); "
        "distributed appends/verifies then route each shard to its "
        "placed worker first",
    )
    pack.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="N",
        help="create a sharded archive set: ARCHIVE becomes the manifest "
        "and N container files are created next to it (hash-routed by "
        "frame name; per-frame bytes identical to a single archive)",
    )
    pack.add_argument(
        "--replicas",
        type=_positive_int,
        default=None,
        metavar="R",
        help="with --shards: keep R byte-identical replicas of every shard "
        "(reads fail over to a replica on damage; 'repair' rebuilds "
        "damaged copies from the survivors)",
    )
    pack.add_argument(
        "--stream",
        action="store_true",
        help="feed frames through the streaming ingest front end (bounded "
        "memory: at most --queue-depth raw frames held at once) instead "
        "of materialising the whole batch",
    )
    pack.add_argument(
        "--queue-depth",
        type=_positive_int,
        default=4,
        help="streaming ingest read-ahead bound (default 4; only with --stream)",
    )
    pack.add_argument(
        "--synthetic",
        type=int,
        metavar="N",
        default=0,
        help="instead of input files, pack N synthetic 12-bit CT slices",
    )
    pack.add_argument("--size", type=int, default=128, help="synthetic slice size (default 128)")
    pack.add_argument("--seed", type=int, default=0, help="synthetic series seed")

    list_cmd = sub.add_parser("list", help="list an archive's frames without decoding")
    list_cmd.add_argument("archive")
    list_cmd.add_argument("--json", action="store_true", help="machine-readable output")
    list_cmd.add_argument(
        "--verbose",
        action="store_true",
        help="also show each frame's stored codec configuration (CodecSpec)",
    )

    extract = sub.add_parser("extract", help="random-access decode frames to PGM files")
    extract.add_argument("archive")
    extract.add_argument(
        "frames", nargs="*", help="frame names or indices (default: all frames)"
    )
    extract.add_argument(
        "-o",
        "--output",
        required=True,
        help="output PGM file (single frame) or directory (several frames)",
    )
    extract.add_argument(
        "--scale",
        type=int,
        default=None,
        metavar="K",
        help="decode a 1/2^K-resolution preview instead of the full frame "
        "(on subband-major archives this reads only a strict prefix of "
        "each payload; 0 = full resolution)",
    )
    extract.add_argument(
        "--roi",
        default=None,
        metavar="Y0-Y1",
        help="decode only the slice rows [Y0, Y1) of each frame "
        "(full-resolution region-of-interest synthesis)",
    )

    verify = sub.add_parser("verify", help="check the archive's integrity")
    verify.add_argument("archive")
    verify.add_argument(
        "--deep", action="store_true", help="also decode every frame and check geometry"
    )
    verify.add_argument(
        "--workers",
        type=_workers_value,
        default=1,
        help="verify across N worker processes, or across socket workers "
        "given as host:port,host:port (one per shard copy on a sharded "
        "set, frame-sharded on a single archive; default 1 = serial)",
    )
    verify.add_argument(
        "--json",
        action="store_true",
        help="machine-readable report (sharded sets: per-shard status map)",
    )

    repair = sub.add_parser(
        "repair", help="rebuild damaged shard copies from healthy replicas"
    )
    repair.add_argument("archive", help="shard-set manifest (replicated sets heal)")
    repair.add_argument(
        "--deep",
        action="store_true",
        help="detect damage with a full decode, not just checksums",
    )
    repair.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="verify across N worker processes while detecting damage",
    )
    repair.add_argument(
        "--verify",
        action="store_true",
        help="re-verify the whole set strictly after repairing",
    )
    repair.add_argument(
        "--json", action="store_true", help="machine-readable repair report"
    )

    serve_cmd = sub.add_parser(
        "serve", help="serve the archive over HTTP (asyncio, stdlib only)"
    )
    serve_cmd.add_argument("archive", help="archive file or shard-set manifest")
    serve_cmd.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve_cmd.add_argument(
        "--port", type=int, default=8765, help="bind port (default 8765; 0 = ephemeral)"
    )
    serve_cmd.add_argument(
        "--cache-bytes",
        type=int,
        default=64 << 20,
        metavar="N",
        help="hot-frame cache budget in bytes (default 64 MiB; 0 disables)",
    )
    serve_cmd.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="reader worker tasks per shard (default 2)",
    )
    serve_cmd.add_argument(
        "--queue-depth",
        type=_positive_int,
        default=16,
        help="per-shard request queue bound (default 16; a full queue "
        "defers new requests instead of growing unbounded)",
    )
    serve_cmd.add_argument(
        "--readonly",
        action="store_true",
        help="reject POST /ingest with 403 (serve a frozen set)",
    )
    serve_cmd.add_argument(
        "--engine",
        choices=("fast", "scalar", "turbo"),
        default=None,
        help="decode engine tier (default: REPRO_ENGINE or fast)",
    )
    return parser


def _unique_names(names: List[str], taken_names) -> List[str]:
    # Appending a second series can reuse source names (slice_000, ...);
    # suffix duplicates so every stored frame keeps a unique name.
    taken = set(taken_names)
    unique: List[str] = []
    for name in names:
        candidate, suffix = name, 1
        while candidate in taken:
            candidate = f"{name}_{suffix}"
            suffix += 1
        taken.add(candidate)
        unique.append(candidate)
    return unique


def _cmd_pack(args: argparse.Namespace) -> int:
    if bool(args.inputs) == bool(args.synthetic):
        raise SystemExit("pack needs either input PGM files or --synthetic N, not both")
    if args.shards and args.append:
        raise SystemExit(
            "--shards applies when creating a set; --append reads the shard "
            "layout from the existing manifest"
        )
    if args.replicas and not args.shards:
        raise SystemExit("--replicas needs --shards (it replicates shard files)")
    if args.place and not args.shards:
        raise SystemExit("--place needs --shards (it places shard files on workers)")
    if args.stream and args.workers != 1:
        raise SystemExit("--stream ingests serially; drop --workers")
    placement = None
    if args.place:
        from .placement import assign_round_robin
        from .sharding import shard_file_names

        nodes = [node for node in args.place.split(",") if node.strip()]
        if not nodes:
            raise SystemExit("--place needs at least one worker node id")
        placement = assign_round_robin(
            shard_file_names(args.archive, args.shards), nodes
        )
    if args.synthetic:
        dataset = archive_dataset(slices=args.synthetic, size=args.size, seed=args.seed)
        names = dataset.names()
        bit_depth = args.bit_depth or dataset.bit_depth

        def load(position: int):
            return dataset.get(names[position])

    else:
        paths = list(args.inputs)
        names = [Path(p).stem for p in paths]
        if args.stream:
            if args.bit_depth:
                bit_depth = args.bit_depth
            else:
                # Streaming never materialises the batch, so the bit depth
                # is taken from the first input (or given explicitly).
                _, max_value = read_pgm(paths[0], return_max_value=True)
                bit_depth = max_value.bit_length()
        else:
            images, max_values = [], []
            for input_path in paths:
                image, max_value = read_pgm(input_path, return_max_value=True)
                images.append(image)
                max_values.append(max_value)
            bit_depth = args.bit_depth or max(value.bit_length() for value in max_values)

        def load(position: int):
            if not args.stream:
                return images[position]
            return read_pgm(paths[position])

    options = {"bit_depth": bit_depth}
    if args.codec == "coefficient":
        options.update(bank=args.bank or "F2", use_rle=not args.no_rle)
    if args.append and is_sharded(args.archive):
        overridden = [
            flag
            for flag, given in (
                ("--codec", args.codec is not None),
                ("--scales", args.scales is not None),
                ("--bit-depth", args.bit_depth is not None),
                ("--bank", args.bank is not None),
                ("--no-rle", args.no_rle),
                ("--layout", args.layout is not None),
            )
            if given
        ]
        if overridden:
            # Never silently drop an explicit flag: the sharded set's
            # configuration is the manifest's, end of story.
            raise SystemExit(
                "a sharded set inherits its configuration from the manifest; "
                f"drop {'/'.join(overridden)} when appending"
            )
        writer = ShardedArchiveWriter.append(
            args.archive, workers=args.workers, engine=args.engine
        )
    elif args.append:
        # codec/scales stay None unless given explicitly, so the writer
        # inherits the archive's own configuration.
        writer = ArchiveWriter.append(
            args.archive,
            codec=args.codec,
            scales=args.scales,
            engine=args.engine,
            workers=args.workers,
            layout=args.layout,
            **options,
        )
    elif args.shards:
        if args.replicas:
            from .replication import ReplicatedShardSet

            writer = ReplicatedShardSet.create(
                args.archive,
                shards=args.shards,
                replicas=args.replicas,
                codec=args.codec or "s-transform",
                scales=args.scales if args.scales is not None else 4,
                engine=args.engine,
                overwrite=args.overwrite,
                workers=args.workers,
                layout=args.layout or LAYOUT_FRAME_MAJOR,
                placement=placement,
                **options,
            )
        else:
            writer = ShardedArchiveWriter.create(
                args.archive,
                shards=args.shards,
                codec=args.codec or "s-transform",
                scales=args.scales if args.scales is not None else 4,
                engine=args.engine,
                overwrite=args.overwrite,
                workers=args.workers,
                layout=args.layout or LAYOUT_FRAME_MAJOR,
                placement=placement,
                **options,
            )
    else:
        writer = ArchiveWriter.create(
            args.archive,
            codec=args.codec or "s-transform",
            scales=args.scales if args.scales is not None else 4,
            engine=args.engine,
            overwrite=args.overwrite,
            workers=args.workers,
            layout=args.layout or LAYOUT_FRAME_MAJOR,
            **options,
        )
    with writer:
        unique = _unique_names(names, writer.frame_names)
        if args.stream:
            feed = ((unique[i], load(i)) for i in range(len(unique)))
            report = ingest_frames(writer, feed, queue_depth=args.queue_depth)
            stats, packed = report.stats, report.frames
            mode_note = (
                f", streamed (peak {report.max_in_flight} of "
                f"{report.queue_depth} frames in flight)"
            )
        else:
            entries = writer.append_batch(
                [load(i) for i in range(len(unique))], names=unique
            )
            stats, packed = writer.stats, len(entries)
            mode_note = f", {stats.workers} workers" if stats.workers > 1 else ""
    shard_note = (
        f" ({writer.shard_count} shards)" if isinstance(writer, ShardedArchiveWriter) else ""
    )
    print(
        f"packed {packed} frames into {args.archive}{shard_note} "
        f"({stats.raw_bytes / 1024:.1f} kB -> {stats.compressed_bytes / 1024:.1f} kB, "
        f"ratio {stats.compression_ratio:.2f}{mode_note})"
    )
    print(stats.render())
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    with open_archive(args.archive) as reader:
        sharded = isinstance(reader, ShardedArchiveReader)
        if args.json:
            records = []
            for e in reader:
                record = {
                    "index": e.index,
                    "name": e.name,
                    "codec": e.codec,
                    "scales": e.scales,
                    "bit_depth": e.bit_depth,
                    "shape": list(e.shape),
                    "bank": e.bank_name,
                    "use_rle": e.use_rle,
                    "offset": e.offset,
                    "stored_bytes": e.length,
                    "raw_bytes": e.raw_bytes,
                    "crc32": f"{e.crc32:08x}",
                    "layout": e.layout,
                }
                if sharded:
                    shard = reader.router.route(e.name)
                    record["shard"] = shard
                    placed = reader.manifest.placement.get(
                        reader.manifest.shard_names[shard]
                    )
                    if placed:
                        record["placed_node"] = placed
                if args.verbose:
                    record["spec"] = frame_spec(e).to_dict()
                records.append(record)
            print(json.dumps(records, indent=2))
            return 0
        header = (
            f"{'idx':>4} {'name':<20} {'codec':<12} {'size':<10} "
            f"{'sc':>2} {'bits':>4} {'raw kB':>8} {'stored kB':>10} {'ratio':>6}"
        )
        if sharded:
            placement_note = (
                f", {len(reader.manifest.placement)} shards placed on "
                f"{len(set(reader.manifest.placement.values()))} nodes"
                if reader.manifest.placement
                else ""
            )
            print(
                f"{args.archive}: {len(reader)} frames in {reader.shard_count} "
                f"shards ({reader.manifest.router}-routed), "
                f"manifest v{reader.manifest.version}{placement_note}"
            )
        else:
            print(f"{args.archive}: {len(reader)} frames, format v{reader.header.version}")
        print(header)
        print("-" * len(header))
        for e in reader:
            size = f"{e.shape[0]}x{e.shape[1]}"
            print(
                f"{e.index:>4} {e.name:<20} {e.codec:<12} {size:<10} "
                f"{e.scales:>2} {e.bit_depth:>4} {e.raw_bytes / 1024:>8.1f} "
                f"{e.length / 1024:>10.1f} {e.compression_ratio:>6.2f}"
            )
            if args.verbose:
                print(f"     spec: {frame_spec(e).describe()}")
        print("-" * len(header))
        ratio = reader.raw_bytes / reader.compressed_bytes if reader.compressed_bytes else 0.0
        print(
            f"{'':>4} {'TOTAL':<20} {'':<12} {'':<10} {'':>2} {'':>4} "
            f"{reader.raw_bytes / 1024:>8.1f} {reader.compressed_bytes / 1024:>10.1f} "
            f"{ratio:>6.2f}"
        )
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    if args.scale is not None and args.roi:
        raise SystemExit("--scale and --roi are mutually exclusive")
    if args.scale is not None and args.scale < 0:
        raise SystemExit(f"--scale must be >= 0, got {args.scale}")
    roi: Optional[tuple] = None
    if args.roi:
        y0_text, sep, y1_text = args.roi.partition("-")
        try:
            if not sep:
                raise ValueError
            roi = (int(y0_text), int(y1_text))
        except ValueError:
            raise SystemExit(f"--roi expects Y0-Y1 (e.g. 128-256), got {args.roi!r}")
    with open_archive(args.archive) as reader:
        keys: List = list(args.frames) if args.frames else list(range(len(reader)))
        keys = [int(key) if isinstance(key, str) and key.lstrip("-").isdigit() else key for key in keys]
        output = Path(args.output)
        single = len(keys) == 1 and not output.is_dir()
        if not single:
            output.mkdir(parents=True, exist_ok=True)
        for key in keys:
            entry = reader.find(key)
            max_value = (1 << entry.bit_depth) - 1
            note = ""
            if args.scale is not None:
                image = reader.read_preview(entry, args.scale)
                # Coefficient-codec previews carry the analysis DC gain, so
                # clip into the frame's declared range before writing PGM.
                image = np.clip(image, 0, max_value)
                note = f" preview @ scale {args.scale}"
            elif roi is not None:
                image = reader.read_roi(entry, roi[0], roi[1])
                note = f" rows [{roi[0]}, {roi[1]})"
            else:
                image = reader.decode(entry)
            path = output if single else output / f"{entry.name}.pgm"
            write_pgm(path, image, max_value=max_value)
            print(
                f"extracted {entry.name} ({image.shape[0]}x{image.shape[1]}"
                f"{note}) -> {path}"
            )
        print(f"read {reader.bytes_read} of {reader.compressed_bytes} payload bytes")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    mode = "deep (checksums + full decode)" if args.deep else "checksums"
    with open_archive(args.archive) as reader:
        if isinstance(reader, ShardedArchiveReader):
            # strict=False: scan every copy and report, instead of raising
            # at the first damaged one — damage is isolated, not contagious.
            report = reader.verify(deep=args.deep, workers=args.workers, strict=False)
            failures = report["failures"]
            damaged = sorted(
                name
                for name, status in report["shard_status"].items()
                if status == "damaged"
            )
            if args.json:
                print(
                    json.dumps(
                        {
                            "archive": args.archive,
                            "ok": not damaged,
                            "frames": report["frames"],
                            "payload_bytes": report["payload_bytes"],
                            "deep": report["deep"],
                            "shards": report["shards"],
                            "copies": report["copies"],
                            "shard_status": report["shard_status"],
                            "failures": failures,
                        },
                        indent=2,
                    )
                )
                return 1 if damaged else 0
            if failures:
                for copy_name, error in sorted(failures.items()):
                    print(f"error: shard {copy_name}: {error}", file=sys.stderr)
                print(
                    f"{args.archive}: {len(damaged)} of {report['shards']} shards "
                    f"DAMAGED; {report['frames']} frames in the other shards "
                    f"verified clean ({mode})"
                )
                return 1
            print(
                f"{args.archive}: OK — {report['frames']} frames across "
                f"{report['shards']} shards, {report['payload_bytes']} payload "
                f"bytes verified ({mode})"
            )
            return 0
        report = reader.verify(deep=args.deep, workers=args.workers)
    if args.json:
        print(
            json.dumps(
                {
                    "archive": args.archive,
                    "ok": True,
                    "frames": report["frames"],
                    "payload_bytes": report["payload_bytes"],
                    "deep": report["deep"],
                },
                indent=2,
            )
        )
        return 0
    print(
        f"{args.archive}: OK — {report['frames']} frames, "
        f"{report['payload_bytes']} payload bytes verified ({mode})"
    )
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    from .replication import repair_set

    if not is_sharded(args.archive):
        raise SystemExit(
            f"{args.archive} is not a shard-set manifest; repair heals "
            "replicated sharded sets (pack --shards N --replicas R)"
        )
    result = repair_set(args.archive, deep=args.deep, workers=args.workers)
    verified = None
    if args.verify and result.ok:
        with ShardedArchiveReader(args.archive) as reader:
            post = reader.verify(deep=args.deep, workers=args.workers, strict=False)
        verified = not post["failures"]
    if args.json:
        record = result.to_dict()
        record["archive"] = args.archive
        if verified is not None:
            record["verified"] = verified
        print(json.dumps(record, indent=2))
    else:
        for copy_name, source in sorted(result.repaired.items()):
            print(f"repaired {copy_name} from {source}")
        for copy_name in sorted(result.unrepairable):
            print(f"error: {copy_name} unrepairable (no healthy copy)", file=sys.stderr)
        counts = {
            status: sum(1 for s in result.shard_status.values() if s == status)
            for status in ("ok", "repaired", "damaged")
        }
        note = " — set re-verified clean" if verified else ""
        print(
            f"{args.archive}: {counts['ok']} shards ok, "
            f"{counts['repaired']} repaired, {counts['damaged']} damaged{note}"
        )
    if verified is False:  # pragma: no cover - repair_set re-verifies already
        return 1
    return 0 if result.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .server import ArchiveHTTPServer, ArchiveService

    async def run() -> None:
        service = ArchiveService(
            args.archive,
            cache_bytes=args.cache_bytes,
            workers_per_shard=args.workers,
            queue_depth=args.queue_depth,
            readonly=args.readonly,
            engine=args.engine,
        )
        server = ArchiveHTTPServer(service, host=args.host, port=args.port)
        await server.start()
        host, port = server.address
        print(
            f"serving {args.archive} ({service.kind}, "
            f"{service.shard_count} shard(s){', read-only' if args.readonly else ''}) "
            f"on http://{host}:{port}"
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


_COMMANDS = {
    "pack": _cmd_pack,
    "list": _cmd_list,
    "extract": _cmd_extract,
    "verify": _cmd_verify,
    "repair": _cmd_repair,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ArchiveError, OSError, KeyError, ValueError) as exc:
        # KeyError's str() wraps the message in quotes; OSError's carries
        # the strerror and filename.  ValueError covers configuration
        # mismatches raised by the codec layer (e.g. frame values outside
        # the declared bit depth) — still the single-line/exit-1 contract,
        # not a traceback.
        message = (
            exc.args[0]
            if isinstance(exc, (ArchiveError, KeyError, ValueError)) and exc.args
            else str(exc)
        )
        print(f"error: {message}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
