"""Command-line front end: ``python -m repro.archive <command>``.

Runs the medical-archive scenario end to end against real files:

``pack``
    Compress PGM files (or a synthetic CT series) into an archive, creating
    it or appending to it; ``--workers N`` shards the batch across a
    process pool (byte-identical output).
``list``
    Show the index table — per-frame codec/filter metadata and sizes —
    without decoding anything (``--json`` for machine-readable output,
    ``--verbose`` to print each frame's stored ``CodecSpec``).
``extract``
    Random-access decode selected frames (by name or index) and write them
    as 16-bit PGM files; only the requested frames' payloads are read.
``verify``
    Check every frame's checksum; ``--deep`` additionally decodes every
    frame and cross-checks its geometry against the index.

Exit status is 0 on success and 1 on any archive error (bad format,
truncation, checksum mismatch), reported as a single-line message on
stderr — suitable for scripting an archive's health check.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..coding.spec import codec_names
from ..imaging.dataset import archive_dataset
from ..imaging.io_pgm import read_pgm, write_pgm
from .format import ArchiveError
from .reader import ArchiveReader
from .serialize import frame_spec
from .writer import ArchiveWriter

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.archive",
        description="Persistent DWT image archive: pack, list, extract, verify.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pack = sub.add_parser("pack", help="compress images into an archive")
    pack.add_argument("archive", help="archive file to create or append to")
    pack.add_argument("inputs", nargs="*", help="input PGM files")
    pack.add_argument("--append", action="store_true", help="append to an existing archive")
    pack.add_argument("--overwrite", action="store_true", help="replace an existing archive")
    pack.add_argument(
        "--codec",
        # Derived from the codec registry at parser-build time, like every
        # other layer's codec validation.
        choices=codec_names(),
        default=None,
        help="compression codec (default: s-transform, the compressive one; "
        "with --append, inherited from the archive's last frame)",
    )
    pack.add_argument(
        "--scales",
        type=int,
        default=None,
        help="decomposition depth (default 4; with --append, inherited)",
    )
    pack.add_argument("--bank", default="F2", help="filter bank for the coefficient codec")
    pack.add_argument(
        "--no-rle",
        action="store_true",
        help="disable zero run-length coding (coefficient codec only)",
    )
    pack.add_argument(
        "--bit-depth",
        type=int,
        default=None,
        help="input bit depth (default: inferred from the PGM maxval)",
    )
    pack.add_argument(
        "--engine",
        choices=("fast", "scalar"),
        default="fast",
        help="entropy-coding engine (default fast)",
    )
    pack.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="compress across N worker processes (default 1 = serial; "
        "streams are byte-identical either way)",
    )
    pack.add_argument(
        "--synthetic",
        type=int,
        metavar="N",
        default=0,
        help="instead of input files, pack N synthetic 12-bit CT slices",
    )
    pack.add_argument("--size", type=int, default=128, help="synthetic slice size (default 128)")
    pack.add_argument("--seed", type=int, default=0, help="synthetic series seed")

    list_cmd = sub.add_parser("list", help="list an archive's frames without decoding")
    list_cmd.add_argument("archive")
    list_cmd.add_argument("--json", action="store_true", help="machine-readable output")
    list_cmd.add_argument(
        "--verbose",
        action="store_true",
        help="also show each frame's stored codec configuration (CodecSpec)",
    )

    extract = sub.add_parser("extract", help="random-access decode frames to PGM files")
    extract.add_argument("archive")
    extract.add_argument(
        "frames", nargs="*", help="frame names or indices (default: all frames)"
    )
    extract.add_argument(
        "-o",
        "--output",
        required=True,
        help="output PGM file (single frame) or directory (several frames)",
    )

    verify = sub.add_parser("verify", help="check the archive's integrity")
    verify.add_argument("archive")
    verify.add_argument(
        "--deep", action="store_true", help="also decode every frame and check geometry"
    )
    return parser


def _cmd_pack(args: argparse.Namespace) -> int:
    if bool(args.inputs) == bool(args.synthetic):
        raise SystemExit("pack needs either input PGM files or --synthetic N, not both")
    if args.synthetic:
        dataset = archive_dataset(slices=args.synthetic, size=args.size, seed=args.seed)
        names = dataset.names()
        frames = [dataset.get(name) for name in names]
        bit_depth = args.bit_depth or dataset.bit_depth
    else:
        names, frames, max_values = [], [], []
        for input_path in args.inputs:
            image, max_value = read_pgm(input_path, return_max_value=True)
            names.append(Path(input_path).stem)
            frames.append(image)
            max_values.append(max_value)
        bit_depth = args.bit_depth or max(value.bit_length() for value in max_values)
    options = {"bit_depth": bit_depth}
    if args.codec == "coefficient":
        options.update(bank=args.bank, use_rle=not args.no_rle)
    if args.append:
        # codec/scales stay None unless given explicitly, so the writer
        # inherits the archive's own configuration.
        writer = ArchiveWriter.append(
            args.archive,
            codec=args.codec,
            scales=args.scales,
            engine=args.engine,
            workers=args.workers,
            **options,
        )
    else:
        writer = ArchiveWriter.create(
            args.archive,
            codec=args.codec or "s-transform",
            scales=args.scales if args.scales is not None else 4,
            engine=args.engine,
            overwrite=args.overwrite,
            workers=args.workers,
            **options,
        )
    with writer:
        # Appending a second series can reuse source names (slice_000, ...);
        # suffix duplicates so every stored frame keeps a unique name.
        taken = set(writer.frame_names)
        unique: List[str] = []
        for name in names:
            candidate, suffix = name, 1
            while candidate in taken:
                candidate = f"{name}_{suffix}"
                suffix += 1
            taken.add(candidate)
            unique.append(candidate)
        entries = writer.append_batch(frames, names=unique)
        stats = writer.stats
    workers_note = f", {stats.workers} workers" if stats.workers > 1 else ""
    print(
        f"packed {len(entries)} frames into {args.archive} "
        f"({stats.raw_bytes / 1024:.1f} kB -> {stats.compressed_bytes / 1024:.1f} kB, "
        f"ratio {stats.compression_ratio:.2f}{workers_note})"
    )
    print(stats.render())
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    with ArchiveReader(args.archive) as reader:
        if args.json:
            records = []
            for e in reader:
                record = {
                    "index": e.index,
                    "name": e.name,
                    "codec": e.codec,
                    "scales": e.scales,
                    "bit_depth": e.bit_depth,
                    "shape": list(e.shape),
                    "bank": e.bank_name,
                    "use_rle": e.use_rle,
                    "offset": e.offset,
                    "stored_bytes": e.length,
                    "raw_bytes": e.raw_bytes,
                    "crc32": f"{e.crc32:08x}",
                }
                if args.verbose:
                    record["spec"] = frame_spec(e).to_dict()
                records.append(record)
            print(json.dumps(records, indent=2))
            return 0
        header = (
            f"{'idx':>4} {'name':<20} {'codec':<12} {'size':<10} "
            f"{'sc':>2} {'bits':>4} {'raw kB':>8} {'stored kB':>10} {'ratio':>6}"
        )
        print(f"{args.archive}: {len(reader)} frames, format v{reader.header.version}")
        print(header)
        print("-" * len(header))
        for e in reader:
            size = f"{e.shape[0]}x{e.shape[1]}"
            print(
                f"{e.index:>4} {e.name:<20} {e.codec:<12} {size:<10} "
                f"{e.scales:>2} {e.bit_depth:>4} {e.raw_bytes / 1024:>8.1f} "
                f"{e.length / 1024:>10.1f} {e.compression_ratio:>6.2f}"
            )
            if args.verbose:
                print(f"     spec: {frame_spec(e).describe()}")
        print("-" * len(header))
        ratio = reader.raw_bytes / reader.compressed_bytes if reader.compressed_bytes else 0.0
        print(
            f"{'':>4} {'TOTAL':<20} {'':<12} {'':<10} {'':>2} {'':>4} "
            f"{reader.raw_bytes / 1024:>8.1f} {reader.compressed_bytes / 1024:>10.1f} "
            f"{ratio:>6.2f}"
        )
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    with ArchiveReader(args.archive) as reader:
        keys: List = list(args.frames) if args.frames else list(range(len(reader)))
        keys = [int(key) if isinstance(key, str) and key.lstrip("-").isdigit() else key for key in keys]
        output = Path(args.output)
        single = len(keys) == 1 and not output.is_dir()
        if not single:
            output.mkdir(parents=True, exist_ok=True)
        for key in keys:
            entry = reader.find(key)
            image = reader.decode(entry)
            path = output if single else output / f"{entry.name}.pgm"
            write_pgm(path, image, max_value=(1 << entry.bit_depth) - 1)
            print(f"extracted {entry.name} ({entry.shape[0]}x{entry.shape[1]}) -> {path}")
        print(f"read {reader.bytes_read} of {reader.compressed_bytes} payload bytes")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    with ArchiveReader(args.archive) as reader:
        report = reader.verify(deep=args.deep)
    mode = "deep (checksums + full decode)" if args.deep else "checksums"
    print(
        f"{args.archive}: OK — {report['frames']} frames, "
        f"{report['payload_bytes']} payload bytes verified ({mode})"
    )
    return 0


_COMMANDS = {
    "pack": _cmd_pack,
    "list": _cmd_list,
    "extract": _cmd_extract,
    "verify": _cmd_verify,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ArchiveError, OSError, KeyError) as exc:
        # KeyError's str() wraps the message in quotes; OSError's carries
        # the strerror and filename.
        message = exc.args[0] if isinstance(exc, (ArchiveError, KeyError)) else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
