"""Common interface of the prior-architecture hardware-requirement models.

Table III of the paper compares four DWT architectures from the literature —
Serial-Parallel, Parallel, Block-filtering and Recursive 1-D — against the
proposed design, in terms of the number of multipliers, the number of memory
elements (words) and the silicon area those components occupy at lossless
precision (32-bit words, L = 13, S = 6, N = 512, ES2 0.7 µm).

Each baseline model derives its multiplier and memory counts from the
architecture's structure as described in the survey the paper cites
(Chakrabarti, Viswanath & Owens 1996) and the paper's own §3 summary.  The
printed formulas in the available copy of the paper are partially garbled;
the reconstructions used here are documented per class and the published
Table III areas are kept alongside as calibration references
(``paper_area_mm2``), so that every comparison clearly separates "model
output" from "value printed in the paper".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..technology.area import ram_area_mm2
from ..technology.cells import TechnologyParameters, es2_07um

__all__ = ["ArchitectureModel", "ArchitectureEstimate"]


@dataclass(frozen=True)
class ArchitectureEstimate:
    """One row of the Table III comparison."""

    name: str
    multipliers: int
    adders: int
    memory_words: int
    word_length: int
    multiplier_area_mm2: float
    memory_area_mm2: float
    total_area_mm2: float
    paper_area_mm2: Optional[float]

    @property
    def memory_bits(self) -> int:
        return self.memory_words * self.word_length


class ArchitectureModel:
    """Base class: a parametric hardware-requirement model of one architecture.

    Subclasses define :meth:`multiplier_count`, :meth:`adder_count` and
    :meth:`memory_words` as functions of the filter length ``L``, the number
    of scales ``S`` and the image size ``N``; :meth:`estimate` turns the
    counts into areas with the calibrated technology model.

    Parameters
    ----------
    filter_length:
        ``L``, the number of filter taps (13 in the paper's comparison).
    scales:
        ``S``, the number of decomposition scales (6 in the comparison).
    image_size:
        ``N``, the number of rows/columns (512 in the comparison).
    word_length:
        Datapath word length in bits; the paper evaluates all architectures
        at the 32-bit lossless word length.
    """

    #: Human-readable architecture name (overridden by subclasses).
    name: str = "abstract"

    #: Area printed in Table III for this architecture (None for new models).
    paper_area_mm2: Optional[float] = None

    def __init__(
        self,
        filter_length: int = 13,
        scales: int = 6,
        image_size: int = 512,
        word_length: int = 32,
    ) -> None:
        if filter_length < 1 or scales < 1 or image_size < 2:
            raise ValueError("filter_length, scales and image_size must be positive")
        if word_length < 8:
            raise ValueError("word_length must be at least 8 bits")
        self.filter_length = filter_length
        self.scales = scales
        self.image_size = image_size
        self.word_length = word_length

    # -- structural counts (overridden) ------------------------------------------------
    def multiplier_count(self) -> int:
        """Number of hardware multipliers."""
        raise NotImplementedError

    def adder_count(self) -> int:
        """Number of hardware adders (defaults to one per multiplier)."""
        return self.multiplier_count()

    def memory_words(self) -> int:
        """Number of on-chip memory words."""
        raise NotImplementedError

    # -- area ----------------------------------------------------------------------------
    def multiplier_area(self, tech: Optional[TechnologyParameters] = None) -> float:
        """Total multiplier area, using the compiled-array cell the paper used
        for its Table III estimates."""
        from ..arch.multiplier import array_multiplier_estimate

        tech = tech or es2_07um()
        single = array_multiplier_estimate(self.word_length, tech).area_mm2
        return self.multiplier_count() * single

    def memory_area(self, tech: Optional[TechnologyParameters] = None) -> float:
        """Total on-chip memory area."""
        tech = tech or es2_07um()
        return ram_area_mm2(self.memory_words(), self.word_length, tech)

    def estimate(self, tech: Optional[TechnologyParameters] = None) -> ArchitectureEstimate:
        """Full Table III row for this architecture."""
        tech = tech or es2_07um()
        mult_area = self.multiplier_area(tech)
        mem_area = self.memory_area(tech)
        return ArchitectureEstimate(
            name=self.name,
            multipliers=self.multiplier_count(),
            adders=self.adder_count(),
            memory_words=self.memory_words(),
            word_length=self.word_length,
            multiplier_area_mm2=mult_area,
            memory_area_mm2=mem_area,
            total_area_mm2=mult_area + mem_area,
            paper_area_mm2=self.paper_area_mm2,
        )
