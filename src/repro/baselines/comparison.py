"""The Table III comparison: all architectures side by side.

:func:`table_iii_comparison` builds the full comparison — the four prior
architectures plus the proposed one — for a given (L, S, N, word length)
operating point, and :func:`area_ratios` summarises the headline claim: at
lossless (32-bit) precision every prior architecture is more than an order
of magnitude larger than the proposed single-MAC datapath.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from ..technology.cells import TechnologyParameters, es2_07um
from .base import ArchitectureEstimate, ArchitectureModel
from .block_filtering import BlockFilteringArchitecture
from .parallel_filter import ParallelArchitecture
from .proposed import ProposedArchitecture
from .recursive_1d import Recursive1DArchitecture
from .serial_parallel import SerialParallelArchitecture

__all__ = [
    "PRIOR_ARCHITECTURES",
    "ALL_ARCHITECTURES",
    "table_iii_comparison",
    "area_ratios",
]

#: The four prior architectures of Table III, in print order.
PRIOR_ARCHITECTURES: List[Type[ArchitectureModel]] = [
    SerialParallelArchitecture,
    ParallelArchitecture,
    BlockFilteringArchitecture,
    Recursive1DArchitecture,
]

#: All five rows of the comparison (priors + proposed).
ALL_ARCHITECTURES: List[Type[ArchitectureModel]] = PRIOR_ARCHITECTURES + [
    ProposedArchitecture
]


def table_iii_comparison(
    filter_length: int = 13,
    scales: int = 6,
    image_size: int = 512,
    word_length: int = 32,
    tech: Optional[TechnologyParameters] = None,
    include_proposed: bool = True,
) -> List[ArchitectureEstimate]:
    """Build every row of the Table III comparison.

    Parameters default to the paper's operating point (L=13, S=6, N=512,
    32-bit words, ES2 0.7 µm).
    """
    tech = tech or es2_07um()
    classes = ALL_ARCHITECTURES if include_proposed else PRIOR_ARCHITECTURES
    rows: List[ArchitectureEstimate] = []
    for cls in classes:
        model = cls(
            filter_length=filter_length,
            scales=scales,
            image_size=image_size,
            word_length=word_length,
        )
        rows.append(model.estimate(tech))
    return rows


def area_ratios(
    rows: Optional[List[ArchitectureEstimate]] = None, **kwargs
) -> Dict[str, float]:
    """Area of each prior architecture relative to the proposed one.

    The paper's claim is qualitative — prior architectures are "unaffordable"
    at lossless precision, the proposed one is ~11 mm² — and quantitatively
    every ratio here comes out above 10x.
    """
    if rows is None:
        rows = table_iii_comparison(**kwargs)
    proposed = next(
        (row for row in rows if row.name.startswith("Proposed")), None
    )
    if proposed is None:
        raise ValueError("the comparison rows do not include the proposed architecture")
    return {
        row.name: row.total_area_mm2 / proposed.total_area_mm2
        for row in rows
        if row is not proposed
    }
