"""Prior-architecture hardware-requirement models (Table III of the paper).

Public API
----------
``SerialParallelArchitecture`` / ``ParallelArchitecture`` /
``BlockFilteringArchitecture`` / ``Recursive1DArchitecture``
    Parametric multiplier/memory/area models of the four prior architectures.
``ProposedArchitecture``
    The paper's architecture expressed in the same comparison terms.
``table_iii_comparison`` / ``area_ratios``
    The full Table III comparison and the area-ratio summary.
"""

from .base import ArchitectureEstimate, ArchitectureModel
from .block_filtering import BlockFilteringArchitecture
from .comparison import (
    ALL_ARCHITECTURES,
    PRIOR_ARCHITECTURES,
    area_ratios,
    table_iii_comparison,
)
from .parallel_filter import ParallelArchitecture
from .proposed import ProposedArchitecture
from .recursive_1d import Recursive1DArchitecture
from .serial_parallel import SerialParallelArchitecture

__all__ = [
    "ArchitectureEstimate",
    "ArchitectureModel",
    "BlockFilteringArchitecture",
    "ALL_ARCHITECTURES",
    "PRIOR_ARCHITECTURES",
    "area_ratios",
    "table_iii_comparison",
    "ParallelArchitecture",
    "ProposedArchitecture",
    "Recursive1DArchitecture",
    "SerialParallelArchitecture",
]
