"""Type-A baseline: the Serial-Parallel architecture [Chakrabarti et al. 1996].

Two *serial* filter pairs compute the row convolutions while two *parallel*
filter pairs compute the column convolutions; the circuit is fed with two
image rows at a time (§3.A of the paper).  A parallel FIR filter of length
``L`` needs ``L`` multipliers; the serial row filters are usually also
counted at full rate for the throughput the survey assumes, giving ``4 L``
multipliers in total.  The row/column hand-over requires the architecture to
hold ``2 L`` full image lines of partial column results plus one line of
input samples, i.e. ``2 L N + N`` words — the dominant cost once the words
are 32 bits wide.
"""

from __future__ import annotations

from .base import ArchitectureModel

__all__ = ["SerialParallelArchitecture"]


class SerialParallelArchitecture(ArchitectureModel):
    """Serial-Parallel architecture (type A of §3)."""

    name = "A. Serial-Parallel"
    paper_area_mm2 = 254.36

    def multiplier_count(self) -> int:
        """Two serial + two parallel filter pairs: ``4 L`` multipliers."""
        return 4 * self.filter_length

    def memory_words(self) -> int:
        """``2 L N + N`` words of line storage for the column filters."""
        return 2 * self.filter_length * self.image_size + self.image_size
