"""Type-C baseline: block-based (lapped block) filtering [Denk & Parhi 1994].

The image is split into blocks, usually of the filter-length size, and each
block is processed with a serial-parallel or parallel filter core (§3.C of
the paper).  Lapped block processing reduces the *register* count inside the
filter core (that is the contribution of the cited paper), but the line
storage between the row and the column pass of each block row is still
proportional to ``L N``; only the single extra input line of the type-A/B
architectures is saved, and a small per-block overlap buffer
(``L (L - 1)`` words for the ``L x L`` blocks) is added.

The printed Table III formula for this row is garbled in the available copy
of the paper; the reconstruction below — ``4 L`` multipliers and
``(2 L - 2) N + L (L - 1)`` memory words — follows the lapped-block analysis
of the cited work and lands within a few percent of the printed 246.64 mm².
"""

from __future__ import annotations

from .base import ArchitectureModel

__all__ = ["BlockFilteringArchitecture"]


class BlockFilteringArchitecture(ArchitectureModel):
    """Block-based filtering architecture (type C of §3)."""

    name = "C. Block filtering"
    paper_area_mm2 = 246.64

    def multiplier_count(self) -> int:
        """The block core still evaluates four ``L``-tap filters in parallel."""
        return 4 * self.filter_length

    def memory_words(self) -> int:
        """``(2 L - 2) N`` line words plus the block-overlap buffer."""
        line_storage = (2 * self.filter_length - 2) * self.image_size
        block_overlap = self.filter_length * (self.filter_length - 1)
        return line_storage + block_overlap
