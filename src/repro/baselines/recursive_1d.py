"""Type-D baseline: the Recursive 1-D architecture [Grzeszczak et al. 1996].

The 1-D WT of all scales is computed in row order with a single recursive
filter core (the "recursive pyramid algorithm"), the intermediate image is
transposed, and the 1-D WT is applied again (§3.D of the paper).  The
arithmetic is a single pair of ``L``-tap filters (``2 L`` multipliers); the
memory cost is dominated by the transposition/intermediate storage of about
``2 L`` lines minus the few lines the recursive schedule overlaps, which the
reconstruction below models as ``(2 L - 3) N`` words plus the recursive
per-scale state (``L S`` words).  This lands within ~1 % of the printed
173.72 mm², and — more importantly for the claim being reproduced — shows
the same shape: the cheapest of the four prior architectures, yet still an
order of magnitude larger than the proposed datapath at 32-bit precision.
"""

from __future__ import annotations

from .base import ArchitectureModel

__all__ = ["Recursive1DArchitecture"]


class Recursive1DArchitecture(ArchitectureModel):
    """Recursive 1-D WT architecture (type D of §3)."""

    name = "D. Recursive 1-D"
    paper_area_mm2 = 173.72

    def multiplier_count(self) -> int:
        """One low-pass / high-pass pair of ``L``-tap parallel filters."""
        return 2 * self.filter_length

    def adder_count(self) -> int:
        """One adder tree per filter."""
        return 2 * self.filter_length

    def memory_words(self) -> int:
        """``(2 L - 3) N`` transposition/line words plus ``L S`` recursive state."""
        return (2 * self.filter_length - 3) * self.image_size + self.filter_length * self.scales
