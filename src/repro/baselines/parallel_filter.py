"""Type-B baseline: the fully Parallel architecture [Chakrabarti et al. 1996].

All four filters (row and column, low- and high-pass) are parallel FIR
filters; the circuit is fed one row at a time (§3.B of the paper).  The
multiplier count is again ``4 L`` (one per tap per parallel filter pair for
rows and columns); the line storage needed between the row and column passes
is the same ``2 L N + N`` words as the Serial-Parallel variant — which is why
Table III prints the same area for both (the two differ in I/O bandwidth and
control, not in arithmetic/memory volume).
"""

from __future__ import annotations

from .base import ArchitectureModel

__all__ = ["ParallelArchitecture"]


class ParallelArchitecture(ArchitectureModel):
    """Fully parallel filter architecture (type B of §3)."""

    name = "B. Parallel"
    paper_area_mm2 = 254.36

    def multiplier_count(self) -> int:
        """Four parallel filters of ``L`` taps each."""
        return 4 * self.filter_length

    def memory_words(self) -> int:
        """``2 L N + N`` words of line storage between row and column passes."""
        return 2 * self.filter_length * self.image_size + self.image_size
