"""The proposed architecture expressed in the Table III comparison terms.

The proposed datapath has a fundamentally different structure from the four
baselines (one time-multiplexed MAC instead of parallel filter banks), so
its Table III row is built from the :mod:`repro.arch` models rather than
from a closed-form multiplier/memory formula:

* multipliers: 1 (the pipelined Wallace multiplier),
* memory words: ``N/2 + 32`` (intermediate RAM + input buffer),
* area: the full Fig. 3 composition of
  :func:`repro.arch.report.proposed_area_breakdown` (≈ 11.2 mm²), *not*
  just multiplier + RAM, because for this design the shifter, accumulator
  and registers are no longer negligible relative to a single multiplier.
"""

from __future__ import annotations

from typing import Optional

from ..arch.config import ArchitectureConfig
from ..arch.report import PAPER_PROPOSED_AREA_MM2, proposed_area_breakdown
from ..technology.cells import TechnologyParameters, es2_07um
from .base import ArchitectureEstimate, ArchitectureModel

__all__ = ["ProposedArchitecture"]


class ProposedArchitecture(ArchitectureModel):
    """The paper's single-MAC architecture, as a Table III row."""

    name = "Proposed (this paper)"
    paper_area_mm2 = PAPER_PROPOSED_AREA_MM2

    def multiplier_count(self) -> int:
        return 1

    def adder_count(self) -> int:
        return 1

    def memory_words(self) -> int:
        config = self._config()
        return config.onchip_memory_words

    def multiplier_area(self, tech: Optional[TechnologyParameters] = None) -> float:
        """Area of the single pipelined Wallace multiplier (not a compiled array)."""
        from ..arch.multiplier import wallace_multiplier_estimate

        tech = tech or es2_07um()
        return wallace_multiplier_estimate(self.word_length, 2, tech).area_mm2

    def estimate(self, tech: Optional[TechnologyParameters] = None) -> ArchitectureEstimate:
        """Table III row using the complete Fig. 3 area composition."""
        tech = tech or es2_07um()
        breakdown = proposed_area_breakdown(self._config(), tech)
        mult_area = self.multiplier_area(tech)
        mem_area = self.memory_area(tech)
        return ArchitectureEstimate(
            name=self.name,
            multipliers=self.multiplier_count(),
            adders=self.adder_count(),
            memory_words=self.memory_words(),
            word_length=self.word_length,
            multiplier_area_mm2=mult_area,
            memory_area_mm2=mem_area,
            total_area_mm2=breakdown.total_mm2,
            paper_area_mm2=self.paper_area_mm2,
        )

    # -- helpers ---------------------------------------------------------------------
    def _config(self) -> ArchitectureConfig:
        return ArchitectureConfig(
            image_size=self.image_size,
            scales=self.scales,
            word_length=self.word_length,
        )
