"""Biorthogonal QMF filter banks of Table I (Villasenor et al. 1995).

Public API
----------
``get_bank(name)``
    Return the :class:`BiorthogonalBank` named ``"F1"`` .. ``"F6"``.
``all_banks()`` / ``available_banks()``
    Access every bank of Table I.
``default_bank()``
    The 13/11-tap bank (F2) used by the paper's worked examples.
``SymmetricFilter`` / ``BiorthogonalBank``
    Filter containers used throughout the library.
"""

from .catalog import (
    DEFAULT_BANK_NAME,
    all_banks,
    available_banks,
    default_bank,
    get_bank,
)
from .coefficients import FILTER_NAMES, TABLE_I, FilterBankSpec, HalfFilterSpec
from .properties import (
    SubbandGains,
    biorthogonality_error,
    cross_orthogonality_error,
    dynamic_range_growth,
    perfect_reconstruction_error,
    subband_gains,
)
from .qmf import (
    BiorthogonalBank,
    SymmetricFilter,
    build_bank,
    derive_highpass,
    expand_half_filter,
)

__all__ = [
    "DEFAULT_BANK_NAME",
    "FILTER_NAMES",
    "TABLE_I",
    "FilterBankSpec",
    "HalfFilterSpec",
    "SymmetricFilter",
    "BiorthogonalBank",
    "SubbandGains",
    "available_banks",
    "all_banks",
    "get_bank",
    "default_bank",
    "build_bank",
    "expand_half_filter",
    "derive_highpass",
    "biorthogonality_error",
    "cross_orthogonality_error",
    "perfect_reconstruction_error",
    "subband_gains",
    "dynamic_range_growth",
]
