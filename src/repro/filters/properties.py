"""Analytical properties of filter banks.

Verification helpers used by tests, by the word-length analysis of
:mod:`repro.fixedpoint.wordlength` and by the Table I experiment:
biorthogonality, perfect-reconstruction residual, subband gain factors and
dynamic-range growth per scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .qmf import BiorthogonalBank, SymmetricFilter

__all__ = [
    "biorthogonality_error",
    "cross_orthogonality_error",
    "perfect_reconstruction_error",
    "SubbandGains",
    "subband_gains",
    "dynamic_range_growth",
]


def _inner_shifted(a: SymmetricFilter, b: SymmetricFilter, shift: int) -> float:
    """Compute ``sum_n a[n] * b[n - 2*shift]``."""
    total = 0.0
    for n, c in a.items():
        total += c * b[n - 2 * shift]
    return total


def biorthogonality_error(bank: BiorthogonalBank) -> float:
    """Worst-case deviation from ``<h[n], ht[n - 2k]> = delta[k]``.

    For an exactly biorthogonal pair this is zero; for the six-decimal
    coefficients printed in Table I it is of the order of 1e-3, which is what
    ultimately bounds the reconstruction error of the float transform.
    """
    max_err = 0.0
    span = (len(bank.h) + len(bank.ht)) // 2 + 1
    for k in range(-span, span + 1):
        target = 1.0 if k == 0 else 0.0
        val = _inner_shifted(bank.h, bank.ht, k)
        max_err = max(max_err, abs(val - target))
        val = _inner_shifted(bank.g, bank.gt, k)
        max_err = max(max_err, abs(val - target))
    return max_err


def cross_orthogonality_error(bank: BiorthogonalBank) -> float:
    """Worst-case deviation of the cross terms ``<h, gt>`` and ``<g, ht>``
    from zero.  Exactly zero by construction of the alternating flip, up to
    floating-point rounding."""
    max_err = 0.0
    span = (len(bank.h) + len(bank.gt)) // 2 + 1
    for k in range(-span, span + 1):
        max_err = max(max_err, abs(_inner_shifted(bank.h, bank.gt, k)))
        max_err = max(max_err, abs(_inner_shifted(bank.g, bank.ht, k)))
    return max_err


def perfect_reconstruction_error(
    bank: BiorthogonalBank, length: int = 64, seed: int = 0, amplitude: float = 4095.0
) -> float:
    """Empirical 1-D perfect-reconstruction residual on a random signal.

    A single analysis/synthesis stage with periodic extension is applied to a
    random signal with values in ``[0, amplitude]`` and the maximum absolute
    reconstruction error is returned.  Used by tests to confirm that the
    residual is far below the 0.5 threshold required for lossless integer
    reconstruction.
    """
    # Import here to avoid a circular import (dwt depends on filters).
    from ..dwt.transform1d import analyze_1d, synthesize_1d

    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, amplitude, size=length)
    lo, hi = analyze_1d(x, bank)
    xr = synthesize_1d(lo, hi, bank)
    return float(np.max(np.abs(xr - x)))


@dataclass(frozen=True)
class SubbandGains:
    """Worst-case amplitude gain of the four subbands of one 2-D stage.

    Each gain is the product of the relevant row/column filter absolute sums,
    which upper-bounds the growth of the maximum absolute value of the
    subband relative to its input (§3 of the paper).
    """

    hh: float  # low-low ("average" image, input of the next scale)
    hg: float  # low rows, high columns
    gh: float  # high rows, low columns
    gg: float  # high-high

    @property
    def maximum(self) -> float:
        """Largest of the four subband gains."""
        return max(self.hh, self.hg, self.gh, self.gg)


def subband_gains(bank: BiorthogonalBank) -> SubbandGains:
    """Per-subband worst-case gains ``(Σ|h|)², Σ|h|Σ|g|, (Σ|g|)²``."""
    sh = bank.h.abs_sum
    sg = bank.g.abs_sum
    return SubbandGains(hh=sh * sh, hg=sh * sg, gh=sg * sh, gg=sg * sg)


def dynamic_range_growth(bank: BiorthogonalBank, scales: int) -> Dict[int, float]:
    """Worst-case cumulative amplitude growth at each scale ``1..scales``.

    The input of scale ``j`` is the HH (average) subband of scale ``j - 1``,
    which grows by ``(Σ|h|)²`` per scale; within scale ``j`` the worst
    subband grows by ``max((Σ|h|)², Σ|h|Σ|g|, (Σ|g|)²)``.  The returned
    factors are relative to the original image and drive Table II.
    """
    gains = subband_gains(bank)
    growth: Dict[int, float] = {}
    for s in range(1, scales + 1):
        growth[s] = (gains.hh ** (s - 1)) * gains.maximum
    return growth


def analysis_filter_lengths(bank: BiorthogonalBank) -> Tuple[int, int]:
    """``(L(H), L(G))`` used by the MAC-count formulas of Eq. (1)/(2)."""
    return bank.analysis_lengths
