"""Quadrature-mirror filter (QMF) objects.

This module turns the half-filter specifications of :mod:`.coefficients`
into full symmetric FIR filters indexed over the integers, derives the
high-pass analysis/synthesis filters with the alternating-flip rule, and
groups the four filters of a biorthogonal bank into a
:class:`BiorthogonalBank` ready for use by the transforms.

Conventions
-----------
A filter is represented by :class:`SymmetricFilter`: a NumPy array of taps
plus the integer index of the tap at ``n = 0``.  The analysis equations used
throughout the library are (Mallat's convention, periodic extension):

.. math::

    a_{j+1}[k] = \\sum_n h[n] \\; a_j[2k + n], \\qquad
    d_{j+1}[k] = \\sum_n g[n] \\; a_j[2k + n]

and the synthesis equation

.. math::

    a_j[m] = \\sum_k \\tilde h[m - 2k] a_{j+1}[k]
           + \\sum_k \\tilde g[m - 2k] d_{j+1}[k].

The high-pass filters are derived from the *opposite* low-pass filter by the
alternating flip

.. math::

    g[n] = (-1)^n \\tilde h[1 - n], \\qquad
    \\tilde g[n] = (-1)^n h[1 - n],

which, together with the biorthogonality of the printed low-pass pairs,
gives perfect reconstruction (verified numerically by the test suite for all
six banks of Table I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

import numpy as np

from .coefficients import TABLE_I, FilterBankSpec, HalfFilterSpec

__all__ = [
    "SymmetricFilter",
    "BiorthogonalBank",
    "expand_half_filter",
    "derive_highpass",
    "build_bank",
]


@dataclass(frozen=True)
class SymmetricFilter:
    """A FIR filter indexed over the integers.

    Attributes
    ----------
    taps:
        Filter coefficients as a 1-D float array, in order of increasing
        index.
    origin:
        Position (array index) of the coefficient at ``n = 0``.  The filter
        support is therefore ``range(-origin, len(taps) - origin)``.  The
        origin may lie outside the array (a purely causal or purely
        anti-causal filter, such as the high-pass derived from a 2-tap Haar
        low-pass).
    name:
        Human-readable label, e.g. ``"F1/H"``.
    """

    taps: np.ndarray
    origin: int
    name: str = ""

    def __post_init__(self) -> None:
        taps = np.asarray(self.taps, dtype=float)
        object.__setattr__(self, "taps", taps)
        if taps.ndim != 1 or taps.size == 0:
            raise ValueError("filter taps must be a non-empty 1-D array")

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return int(self.taps.size)

    def __getitem__(self, n: int) -> float:
        """Value of the tap at integer index ``n`` (0.0 outside support)."""
        i = n + self.origin
        if 0 <= i < self.taps.size:
            return float(self.taps[i])
        return 0.0

    def indices(self) -> range:
        """The support of the filter as a ``range`` of integer indices."""
        return range(-self.origin, len(self) - self.origin)

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(index, coefficient)`` pairs of the support."""
        for i, c in enumerate(self.taps):
            yield i - self.origin, float(c)

    # -- derived quantities --------------------------------------------------
    @property
    def abs_sum(self) -> float:
        """Sum of absolute values of the taps (the Σ|cn| column of Table I)."""
        return float(np.abs(self.taps).sum())

    @property
    def dc_gain(self) -> float:
        """Sum of the taps (gain at zero frequency)."""
        return float(self.taps.sum())

    @property
    def nyquist_gain(self) -> float:
        """Gain at the Nyquist frequency, ``sum (-1)^n h[n]``."""
        signs = np.array([(-1.0) ** n for n in self.indices()])
        return float((signs * self.taps).sum())

    @property
    def half_length(self) -> int:
        """``l`` such that ``L = 2*l + 1`` (odd) or ``L = 2*l`` (even).

        The paper's buffer sizing uses ``l = (L - 1) // 2`` for odd-length
        filters; for even-length filters we return ``L // 2``.
        """
        return len(self) // 2

    def is_symmetric(self, tol: float = 0.0) -> bool:
        """True if the tap array is palindromic within ``tol``."""
        return bool(np.all(np.abs(self.taps - self.taps[::-1]) <= tol))

    def reversed(self) -> "SymmetricFilter":
        """Time-reversed filter ``h[-n]``."""
        new_origin = len(self) - 1 - self.origin
        return SymmetricFilter(self.taps[::-1].copy(), new_origin, self.name + "~rev")

    def scaled(self, factor: float) -> "SymmetricFilter":
        """Return a copy with every tap multiplied by ``factor``."""
        return SymmetricFilter(self.taps * factor, self.origin, self.name)

    def as_map(self) -> Dict[int, float]:
        """Return the filter as a ``{index: coefficient}`` dictionary."""
        return dict(self.items())


def expand_half_filter(spec: HalfFilterSpec, name: str = "") -> SymmetricFilter:
    """Expand a printed Table I half filter to a full :class:`SymmetricFilter`.

    Odd-length filters are whole-sample symmetric about index 0; even-length
    filters are half-sample symmetric about index -1/2 (i.e.
    ``h[-1 - n] = h[n]``).  The 2-tap Haar filter of bank F5 is printed in
    full; both printed forms are accepted.
    """
    length = spec.length
    half = list(spec.half_coefficients)
    if length % 2 == 1:
        expected = (length + 1) // 2
        if len(half) != expected:
            raise ValueError(
                f"odd-length filter of {length} taps needs {expected} printed "
                f"coefficients, got {len(half)}"
            )
        taps = half[:0:-1] + half
        origin = (length - 1) // 2
    else:
        if len(half) == length:
            # Full filter printed (the Haar filter of F5); keep the leading
            # half, the rest is implied by symmetry and must agree.
            implied = half[: length // 2]
            if list(reversed(implied)) + implied != half and implied + implied != half:
                # Accept either print order; the Haar case is trivially both.
                raise ValueError(f"even-length filter {name} printed inconsistently")
            half = implied
        expected = length // 2
        if len(half) != expected:
            raise ValueError(
                f"even-length filter of {length} taps needs {expected} printed "
                f"coefficients, got {len(half)}"
            )
        taps = half[::-1] + half
        origin = length // 2
    return SymmetricFilter(np.array(taps, dtype=float), origin, name)


def derive_highpass(opposite_lowpass: SymmetricFilter, name: str = "") -> SymmetricFilter:
    """Derive a high-pass filter by the alternating flip of the *other*
    branch's low-pass filter: ``g[n] = (-1)^n h_other[1 - n]``.

    The analysis high-pass is derived from the synthesis low-pass and vice
    versa; this is the standard biorthogonal construction and the one that
    yields perfect reconstruction for the Table I pairs.
    """
    src = opposite_lowpass
    # Support of g: n such that 1 - n is in the support of src.
    lo = 1 - (len(src) - 1 - src.origin)
    hi = 1 + src.origin
    indices = list(range(lo, hi + 1))
    taps = [((-1.0) ** n) * src[1 - n] for n in indices]
    origin = -lo
    return SymmetricFilter(np.array(taps, dtype=float), origin, name)


@dataclass(frozen=True)
class BiorthogonalBank:
    """A complete biorthogonal filter bank (four filters).

    ``h``/``g`` are the analysis low/high-pass filters; ``ht``/``gt`` the
    synthesis low/high-pass filters.
    """

    name: str
    h: SymmetricFilter
    g: SymmetricFilter
    ht: SymmetricFilter
    gt: SymmetricFilter

    @property
    def analysis_lengths(self) -> Tuple[int, int]:
        """``(len(h), len(g))`` — the L(H), L(G) of the paper's Eq. (1)."""
        return (len(self.h), len(self.g))

    @property
    def max_analysis_length(self) -> int:
        """Longest analysis filter; drives the buffer sizing of §4.1."""
        return max(len(self.h), len(self.g))

    @property
    def mac_per_output_pair(self) -> int:
        """MACs needed to produce one low-pass and one high-pass sample."""
        return len(self.h) + len(self.g)

    def all_filters(self) -> Dict[str, SymmetricFilter]:
        """The four filters as a dictionary keyed by role."""
        return {"h": self.h, "g": self.g, "ht": self.ht, "gt": self.gt}


def build_bank(spec: FilterBankSpec) -> BiorthogonalBank:
    """Build the four-filter :class:`BiorthogonalBank` for a Table I row."""
    h = expand_half_filter(spec.analysis_lowpass, f"{spec.name}/H")
    ht = expand_half_filter(spec.synthesis_lowpass, f"{spec.name}/Ht")
    g = derive_highpass(ht, f"{spec.name}/G")
    gt = derive_highpass(h, f"{spec.name}/Gt")
    return BiorthogonalBank(name=spec.name, h=h, g=g, ht=ht, gt=gt)


def build_bank_by_name(name: str) -> BiorthogonalBank:
    """Build the bank for one of the Table I names (``"F1"`` .. ``"F6"``)."""
    try:
        spec = TABLE_I[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown filter bank {name!r}; available: {sorted(TABLE_I)}"
        ) from exc
    return build_bank(spec)
