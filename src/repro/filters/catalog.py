"""Registry of the Table I filter banks.

Provides cached construction of :class:`~repro.filters.qmf.BiorthogonalBank`
objects by name, plus convenience accessors used across the library (the
default bank of the paper's worked examples is F2, the 13/11-tap pair, since
the architecture is dimensioned for a 13-tap filter).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from .coefficients import FILTER_NAMES, TABLE_I
from .qmf import BiorthogonalBank, build_bank

__all__ = [
    "available_banks",
    "get_bank",
    "all_banks",
    "default_bank",
    "DEFAULT_BANK_NAME",
]

#: The paper dimensions the architecture for 13-tap filters and uses
#: L = 13 in all worked examples; that is filter bank F2.
DEFAULT_BANK_NAME = "F2"


def available_banks() -> List[str]:
    """Names of the filter banks of Table I, in print order."""
    return list(FILTER_NAMES)


@lru_cache(maxsize=None)
def get_bank(name: str) -> BiorthogonalBank:
    """Return the (cached) :class:`BiorthogonalBank` called ``name``.

    Parameters
    ----------
    name:
        One of ``"F1"`` .. ``"F6"`` (case-insensitive).
    """
    key = name.upper()
    if key not in TABLE_I:
        raise KeyError(
            f"unknown filter bank {name!r}; available banks: {available_banks()}"
        )
    return build_bank(TABLE_I[key])


def all_banks() -> Dict[str, BiorthogonalBank]:
    """All six banks keyed by name, in Table I order."""
    return {name: get_bank(name) for name in FILTER_NAMES}


def default_bank() -> BiorthogonalBank:
    """The filter bank used by the paper's worked examples (F2, 13/11 taps)."""
    return get_bank(DEFAULT_BANK_NAME)
