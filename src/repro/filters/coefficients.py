"""Filter coefficients of Table I (Villasenor, Belzer, Liao 1995).

The paper evaluates six biorthogonal filter banks, named ``F1`` .. ``F6``,
that Villasenor et al. identified as the best suited to image compression.
Table I of the paper lists, for each bank, the analysis low-pass filter ``H``
and the synthesis ("inverse") low-pass filter ``Ht`` (printed as H with an
overbar).  Only the coefficients for non-negative indices are printed; the
origin is the leftmost printed coefficient and the coefficients for negative
indices follow from the symmetry of the QMFs:

* odd-length filters are symmetric about index 0 (whole-sample symmetry),
* even-length filters are symmetric about index -1/2 (half-sample symmetry).

This module stores the coefficients *exactly as printed* (six decimal
digits).  Everything else in the library (full filter expansion, high-pass
derivation, dynamic-range analysis, fixed-point quantisation) is computed
from these printed values so that the reproduction uses the same inputs as
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "HalfFilterSpec",
    "FilterBankSpec",
    "TABLE_I",
    "FILTER_NAMES",
    "table_i_rows",
]


@dataclass(frozen=True)
class HalfFilterSpec:
    """Half of a symmetric filter, exactly as printed in Table I.

    Attributes
    ----------
    length:
        Number of taps of the *full* filter (the ``L`` column of Table I).
    half_coefficients:
        The printed coefficients.  For odd ``length`` these are the values at
        indices ``0 .. (length - 1) // 2``; for even ``length`` the values at
        indices ``0 .. length // 2 - 1`` (the remaining taps follow by
        symmetry).  The single exception in the paper is the 2-tap Haar
        filter of bank F5, for which both taps are printed; the expansion
        code accepts either form.
    printed_abs_sum:
        The ``sum |cn|`` column printed in Table I (sum of absolute values of
        the *full* filter).  Kept for verification of our expansion.
    """

    length: int
    half_coefficients: Tuple[float, ...]
    printed_abs_sum: float


@dataclass(frozen=True)
class FilterBankSpec:
    """One row-group of Table I: an analysis/synthesis low-pass pair."""

    name: str
    analysis_lowpass: HalfFilterSpec
    synthesis_lowpass: HalfFilterSpec

    @property
    def lengths(self) -> Tuple[int, int]:
        """``(analysis length, synthesis length)`` e.g. ``(9, 7)`` for F1."""
        return (self.analysis_lowpass.length, self.synthesis_lowpass.length)


#: Table I of the paper, verbatim.
TABLE_I: Dict[str, FilterBankSpec] = {
    "F1": FilterBankSpec(
        name="F1",
        analysis_lowpass=HalfFilterSpec(
            length=9,
            half_coefficients=(0.852699, 0.377402, -0.110624, -0.023849, 0.037828),
            printed_abs_sum=1.952105,
        ),
        synthesis_lowpass=HalfFilterSpec(
            length=7,
            half_coefficients=(0.788486, 0.418092, -0.040689, -0.064539),
            printed_abs_sum=1.835126,
        ),
    ),
    "F2": FilterBankSpec(
        name="F2",
        analysis_lowpass=HalfFilterSpec(
            length=13,
            half_coefficients=(
                0.767245,
                0.383269,
                -0.068878,
                -0.033475,
                0.047282,
                0.003759,
                -0.008473,
            ),
            printed_abs_sum=1.857495,
        ),
        synthesis_lowpass=HalfFilterSpec(
            length=11,
            half_coefficients=(
                0.832848,
                0.448109,
                -0.069163,
                -0.108737,
                0.006292,
                0.014182,
            ),
            printed_abs_sum=2.125814,
        ),
    ),
    "F3": FilterBankSpec(
        name="F3",
        analysis_lowpass=HalfFilterSpec(
            length=6,
            half_coefficients=(0.788486, 0.047699, -0.129078),
            printed_abs_sum=1.930526,
        ),
        synthesis_lowpass=HalfFilterSpec(
            length=10,
            half_coefficients=(0.615051, 0.133389, -0.067237, 0.006989, 0.018914),
            printed_abs_sum=1.683160,
        ),
    ),
    "F4": FilterBankSpec(
        name="F4",
        analysis_lowpass=HalfFilterSpec(
            length=5,
            half_coefficients=(1.060660, 0.353553, -0.176777),
            printed_abs_sum=2.121320,
        ),
        synthesis_lowpass=HalfFilterSpec(
            length=3,
            half_coefficients=(0.707107, 0.353553),
            printed_abs_sum=1.414214,
        ),
    ),
    "F5": FilterBankSpec(
        name="F5",
        analysis_lowpass=HalfFilterSpec(
            length=2,
            half_coefficients=(0.707107, 0.707107),
            printed_abs_sum=1.414214,
        ),
        synthesis_lowpass=HalfFilterSpec(
            length=6,
            half_coefficients=(0.707107, 0.088388, -0.088388),
            printed_abs_sum=1.767767,
        ),
    ),
    "F6": FilterBankSpec(
        name="F6",
        analysis_lowpass=HalfFilterSpec(
            length=9,
            half_coefficients=(0.994369, 0.419845, -0.176777, -0.066291, 0.033145),
            printed_abs_sum=2.386485,
        ),
        synthesis_lowpass=HalfFilterSpec(
            length=3,
            half_coefficients=(0.707107, 0.353553),
            printed_abs_sum=1.414213,
        ),
    ),
}

#: The filter-bank names in the order they appear in Table I.
FILTER_NAMES: Tuple[str, ...] = ("F1", "F2", "F3", "F4", "F5", "F6")


def table_i_rows():
    """Yield ``(bank name, 'H'|'Ht', HalfFilterSpec)`` rows in print order.

    Convenience iterator used by the Table I experiment and by tests that
    compare our expanded filters with every printed row of the paper.
    """
    for name in FILTER_NAMES:
        bank = TABLE_I[name]
        yield name, "H", bank.analysis_lowpass
        yield name, "Ht", bank.synthesis_lowpass
