#!/usr/bin/env python3
"""Cycle-accurate simulation of the proposed architecture on a small image.

This is the reproduction of the paper's own validation flow ("modeled in
fully synthesizable VHDL and simulated on data taken from random images and
gave the same output as a software implementation"), with the VHDL model
replaced by the Python cycle-accurate model:

* print the Fig. 2 macro-cycle schedule (normal and refresh-extended),
* run the accelerator model forward and inverse on a random 12-bit image
  (the vectorised ``engine="fast"`` whole-pass engine by default; pass
  ``scalar`` as the third argument for the per-macro-cycle reference —
  both are bit-identical in outputs and cycle reports),
* cross-check every subband against the software fixed-point transform,
* report cycles, utilisation, DRAM traffic and the implied wall-clock time.

With the fast engine even the paper's full 512x512 / 6-scale configuration
simulates in well under a second:  python examples/cycle_accurate_sim.py 512 6

Run with:  python examples/cycle_accurate_sim.py [image_size] [scales] [engine]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis import format_table
from repro.arch import ArchitectureConfig, DwtAccelerator, estimate_performance, operation_schedule
from repro.filters import get_bank
from repro.fxdwt import FixedPointDWT
from repro.imaging import random_image


def show_schedule(config: ArchitectureConfig) -> None:
    slots = operation_schedule(
        config.macrocycle_cycles, refresh=True, refresh_stall_cycles=config.refresh_stall_cycles
    )
    print(
        format_table(
            ("cycle", "DRAM manager", "input buffer", "acc_ctl", "output FIFO"),
            [(s.cycle, s.dram_op, s.input_buffer_op, s.acc_ctl, s.output_fifo_op) for s in slots],
            title="Fig. 2 operation schedule (macro-cycle with refresh extension)",
        )
    )


def main(image_size: int = 32, scales: int = 3, engine: str = "fast") -> None:
    config = ArchitectureConfig(image_size=image_size, scales=scales)
    show_schedule(config)

    image = random_image(image_size, seed=42)
    accelerator = DwtAccelerator(config, engine=engine)

    print(
        f"\nSimulating FDWT + IDWT of a random {image_size}x{image_size} "
        f"12-bit image ({engine} engine) ..."
    )
    pyramid, forward_report = accelerator.forward(image)
    reconstructed, inverse_report = accelerator.inverse(pyramid)

    software = FixedPointDWT(get_bank(config.bank_name), scales).forward(image)
    subbands_match = np.array_equal(pyramid.approximation, software.approximation) and all(
        np.array_equal(getattr(pyramid.details[i], key), getattr(software.details[i], key))
        for i in range(scales)
        for key in ("hg", "gh", "gg")
    )

    print(f"\n  forward : {forward_report.summary()}")
    print(f"  inverse : {inverse_report.summary()}")
    print(f"  hardware output == software fixed-point transform: {subbands_match}")
    print(f"  round trip bit-exact: {bool(np.array_equal(reconstructed, image))}")

    full_size = estimate_performance()
    print(
        "\nExtrapolated to the paper's 512x512 operating point (analytic model): "
        f"{full_size.images_per_second:.2f} images/s at {full_size.clock_frequency_mhz:.0f} MHz, "
        f"utilisation {100 * full_size.utilisation:.2f}%"
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    scales = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    engine = sys.argv[3] if len(sys.argv) > 3 else "fast"
    main(size, scales, engine)
