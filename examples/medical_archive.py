#!/usr/bin/env python3
"""Medical-image archive scenario: losslessly compress a CT slice series.

The paper motivates the architecture with the storage and retrieval of
medical images.  This example builds that workload end to end:

* generate a short series of synthetic 12-bit CT slices (Shepp-Logan
  phantom with slice-to-slice variation),
* compress every slice losslessly with the S-transform codec (the
  compressive extension codec) and with the coefficient-exact codec (the
  back end that models what the paper's hardware hands to a coder),
* verify every slice decodes bit-for-bit,
* write the decoded slices to 16-bit PGM files as an archive would,
* report per-slice and aggregate compression figures.

Run with:  python examples/medical_archive.py [output_directory]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.coding import LosslessWaveletCodec, STransformCodec
from repro.imaging import archive_dataset, psnr, read_pgm, write_pgm


def main(output_directory: str | None = None) -> None:
    output_dir = Path(output_directory) if output_directory else Path(tempfile.mkdtemp(prefix="dwt_archive_"))
    output_dir.mkdir(parents=True, exist_ok=True)

    dataset = archive_dataset(slices=6, size=128)
    s_codec = STransformCodec(scales=4)
    exact_codec = LosslessWaveletCodec("F2", scales=4)

    print(f"Archiving {len(dataset)} slices of {dataset.bit_depth}-bit CT data to {output_dir}\n")
    header = f"{'slice':<12} {'raw kB':>8} {'S-codec kB':>11} {'ratio':>7} {'bpp':>6} {'exact-codec kB':>15}"
    print(header)
    print("-" * len(header))

    total_raw = 0
    total_compressed = 0
    for name, image in dataset:
        reconstructed, stream = s_codec.roundtrip(image)
        assert np.array_equal(reconstructed, image), "S-transform codec must be lossless"

        exact_reconstructed, exact_stream = exact_codec.roundtrip(image)
        assert np.array_equal(exact_reconstructed, image), "coefficient codec must be lossless"

        path = output_dir / f"{name}.pgm"
        write_pgm(path, reconstructed, max_value=4095)
        assert np.array_equal(read_pgm(path), image), "PGM round trip must be exact"

        total_raw += stream.original_bytes
        total_compressed += stream.compressed_bytes
        print(
            f"{name:<12} {stream.original_bytes / 1024:8.1f} "
            f"{stream.compressed_bytes / 1024:11.1f} {stream.compression_ratio:7.2f} "
            f"{stream.bits_per_pixel:6.2f} {exact_stream.compressed_bytes / 1024:15.1f}"
        )

    print("-" * len(header))
    print(
        f"{'TOTAL':<12} {total_raw / 1024:8.1f} {total_compressed / 1024:11.1f} "
        f"{total_raw / total_compressed:7.2f}"
    )
    # PSNR of infinite dB is the numeric face of "lossless".
    example = dataset.get("slice_000")
    print(f"\nPSNR of a decoded slice vs original: {psnr(example, example)} dB (lossless)")
    print(f"Decoded slices written to {output_dir}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
