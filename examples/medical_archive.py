#!/usr/bin/env python3
"""Medical-image archive scenario: a persistent, randomly accessible store.

The paper motivates the architecture with the storage and retrieval of
medical images.  This example runs that workload against a real file using
the persistent archive container (:mod:`repro.archive`) instead of holding
everything in memory:

* generate a series of synthetic 12-bit CT slices (Shepp-Logan phantom
  with slice-to-slice variation),
* write them to an on-disk archive with :class:`ArchiveWriter` — the
  configuration is one :class:`~repro.coding.spec.CodecSpec` (S-transform
  codec, vectorised coding engine), the stage pipeline compresses the
  series (sharded across worker processes when ``workers`` > 1, with
  byte-identical output), and the container records per-frame index
  entries, codec metadata and CRC-32 checksums,
* re-open the archive and *append* a follow-up scan, which never rewrites
  the frames already stored,
* list the index, random-access decode a single slice (reading only that
  slice's payload bytes — the reader counts them), decode a slice range,
  and bulk-decode everything through the batched pipeline,
* verify integrity (checksums + deep decode) and export one slice to a
  16-bit PGM file as a PACS hand-off would,
* then scale the same workload out: **stream** a live feed into a
  **sharded archive set** (one codec configuration spanning several
  container files behind a name router) under a bounded-memory queue,
  random-access one slice by routing straight to its shard, and verify
  the set shard by shard.

The same flow is scriptable from the shell::

    python -m repro.archive pack archive.dwta --synthetic 8 --workers 4
    python -m repro.archive list archive.dwta --verbose
    python -m repro.archive extract archive.dwta slice_004 -o slice.pgm
    python -m repro.archive verify archive.dwta --deep
    python -m repro.archive pack set.dwts --synthetic 8 --shards 4 --workers 4
    python -m repro.archive verify set.dwts --deep --workers 4

Run with:  python examples/medical_archive.py [output_directory]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.archive import (
    ArchiveReader,
    ArchiveWriter,
    ShardedArchiveReader,
    ShardedArchiveWriter,
    ingest_frames,
)
from repro.coding import CodecSpec
from repro.imaging import archive_dataset, ct_slice_series, read_pgm, write_pgm


def main(output_directory: str | None = None) -> None:
    output_dir = Path(output_directory) if output_directory else Path(tempfile.mkdtemp(prefix="dwt_archive_"))
    output_dir.mkdir(parents=True, exist_ok=True)
    archive_path = output_dir / "ct_series.dwta"

    dataset = archive_dataset(slices=6, size=128)
    names = dataset.names()
    frames = [dataset.get(name) for name in names]

    print(f"Archiving {len(dataset)} slices of {dataset.bit_depth}-bit CT data to {archive_path}\n")

    # -- write the series ---------------------------------------------------------------
    # One CodecSpec describes the whole configuration; `workers=2` shards
    # the compression across a process pool (byte-identical to serial).
    spec = CodecSpec(codec="s-transform", scales=4)
    print(f"Configuration: {spec.describe()}\n")
    with ArchiveWriter.create(archive_path, spec=spec, overwrite=True) as writer:
        writer.append_batch(frames, names=names, workers=2)
        encode_stats = writer.stats
    print("Encode pipeline (S-transform codec):")
    print(encode_stats.render())

    # -- append a follow-up scan (existing payloads are never rewritten) ----------------
    followup = ct_slice_series(count=2, size=128, seed=99)
    with ArchiveWriter.append(archive_path) as writer:
        # The appending writer inherited the stored configuration.
        assert writer.spec.codec == spec.codec and writer.spec.scales == spec.scales
        writer.append_batch(followup, names=["followup_000", "followup_001"])

    # -- list, random access, range, bulk decode ----------------------------------------
    with ArchiveReader(archive_path) as reader:
        header = f"{'slice':<14} {'size':<10} {'raw kB':>8} {'stored kB':>10} {'ratio':>7}"
        print(f"\n{archive_path.name}: {len(reader)} frames on disk")
        print(header)
        print("-" * len(header))
        for entry in reader:
            print(
                f"{entry.name:<14} {f'{entry.shape[0]}x{entry.shape[1]}':<10} "
                f"{entry.raw_bytes / 1024:8.1f} {entry.length / 1024:10.1f} "
                f"{entry.compression_ratio:7.2f}"
            )
        print("-" * len(header))
        total_ratio = reader.raw_bytes / reader.compressed_bytes
        print(
            f"{'TOTAL':<14} {'':<10} {reader.raw_bytes / 1024:8.1f} "
            f"{reader.compressed_bytes / 1024:10.1f} {total_ratio:7.2f}"
        )

        # Random access: decode one slice, touching only its payload bytes.
        slice_004 = reader.decode("slice_004")
        assert np.array_equal(slice_004, frames[4]), "random access must be lossless"
        print(
            f"\nRandom access to slice_004 read {reader.bytes_read} of "
            f"{reader.compressed_bytes} payload bytes "
            f"({100.0 * reader.bytes_read / reader.compressed_bytes:.1f}%)"
        )

        # A slice range decodes without touching the rest of the archive.
        first_two = reader.decode_range(0, 2)
        assert all(np.array_equal(a, b) for a, b in zip(first_two, frames[:2]))

        # Bulk decode goes back through the batched pipeline, stats included.
        decoded, decode_stats = reader.decode_all()
        assert all(
            np.array_equal(a, b) for a, b in zip(decoded, frames + list(followup))
        ), "every archived slice must round-trip bit for bit"
        print("\nDecode pipeline (whole archive through decompress_frames):")
        print(decode_stats.render())

        # Integrity: every payload checksummed, then fully decoded.
        report = reader.verify(deep=True)
        print(f"\nIntegrity check: {report['frames']} frames OK (deep verify)")

        # Export one slice to PGM, as an archive hand-off would.
        pgm_path = output_dir / "slice_004.pgm"
        write_pgm(pgm_path, slice_004, max_value=4095)
        assert np.array_equal(read_pgm(pgm_path), frames[4]), "PGM round trip must be exact"
        print(f"slice_004 exported to {pgm_path}")

    # -- scale out: stream the same series into a sharded archive set -------------------
    # One manifest + 4 container files; frames route to shards by name, a
    # bounded queue (backpressure) keeps at most 3 undecoded frames in
    # memory, and the stored payload bytes are identical to the
    # single-file archive above.
    set_path = output_dir / "ct_series.dwts"
    feed = ((name, dataset.get(name)) for name in names)  # a "live" feed
    with ShardedArchiveWriter.create(set_path, shards=4, spec=spec, overwrite=True) as writer:
        report = ingest_frames(writer, feed, queue_depth=3)
    print(
        f"\nStreamed {report.frames} slices into {set_path.name} "
        f"({writer.shard_count} shards; peak {report.max_in_flight} of "
        f"{report.queue_depth} frames in flight)"
    )

    with ShardedArchiveReader(set_path) as sharded:
        probe = "slice_004"
        routed = sharded.decode(probe)
        assert np.array_equal(routed, frames[4]), "routed access must be lossless"
        print(
            f"Routed random access to {probe}: opened shard(s) "
            f"{sharded.opened_shards} only, read {sharded.bytes_read} payload bytes"
        )
        set_report = sharded.verify(deep=True)
        print(
            f"Set integrity: {set_report['frames']} frames across "
            f"{set_report['shards']} shards OK (deep verify, damage would be "
            "isolated per shard)"
        )

    print(f"\nArchive and exports written to {output_dir}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
