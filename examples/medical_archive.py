#!/usr/bin/env python3
"""Medical-image archive scenario: losslessly compress a CT slice series.

The paper motivates the architecture with the storage and retrieval of
medical images.  This example builds that workload end to end:

* generate a short series of synthetic 12-bit CT slices (Shepp-Logan
  phantom with slice-to-slice variation),
* compress the whole series in one batched pipeline call
  (:func:`repro.coding.compress_frames`, S-transform codec on the
  vectorised coding engine) and also through the coefficient-exact codec
  (the back end that models what the paper's hardware hands to a coder),
* verify every slice decodes bit-for-bit,
* write the decoded slices to 16-bit PGM files as an archive would,
* report per-slice figures, aggregate compression, and the per-stage
  wall-clock breakdown of the encode and decode pipelines.

Run with:  python examples/medical_archive.py [output_directory]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.coding import compress_frames, decompress_frames
from repro.imaging import archive_dataset, psnr, read_pgm, write_pgm


def main(output_directory: str | None = None) -> None:
    output_dir = Path(output_directory) if output_directory else Path(tempfile.mkdtemp(prefix="dwt_archive_"))
    output_dir.mkdir(parents=True, exist_ok=True)

    dataset = archive_dataset(slices=6, size=128)
    names = dataset.names()
    frames = [dataset.get(name) for name in names]

    print(f"Archiving {len(dataset)} slices of {dataset.bit_depth}-bit CT data to {output_dir}\n")

    batch = compress_frames(frames, codec="s-transform", scales=4)
    decoded, decode_stats = decompress_frames(batch)
    exact_batch = compress_frames(frames, codec="coefficient", scales=4, bank="F2")

    header = f"{'slice':<12} {'raw kB':>8} {'S-codec kB':>11} {'ratio':>7} {'bpp':>6} {'exact-codec kB':>15}"
    print(header)
    print("-" * len(header))

    for name, image, reconstructed, stream, exact_stream in zip(
        names, frames, decoded, batch.streams, exact_batch.streams
    ):
        assert np.array_equal(reconstructed, image), "S-transform codec must be lossless"

        path = output_dir / f"{name}.pgm"
        write_pgm(path, reconstructed, max_value=4095)
        assert np.array_equal(read_pgm(path), image), "PGM round trip must be exact"

        print(
            f"{name:<12} {stream.original_bytes / 1024:8.1f} "
            f"{stream.compressed_bytes / 1024:11.1f} {stream.compression_ratio:7.2f} "
            f"{stream.bits_per_pixel:6.2f} {exact_stream.compressed_bytes / 1024:15.1f}"
        )

    print("-" * len(header))
    print(
        f"{'TOTAL':<12} {batch.original_bytes / 1024:8.1f} "
        f"{batch.compressed_bytes / 1024:11.1f} {batch.compression_ratio:7.2f}"
    )

    exact_decoded, _ = decompress_frames(exact_batch)
    assert all(
        np.array_equal(a, b) for a, b in zip(frames, exact_decoded)
    ), "coefficient codec must be lossless"

    print("\nEncode pipeline (S-transform codec):")
    print(batch.stats.render())
    print("\nDecode pipeline (S-transform codec):")
    print(decode_stats.render())

    # PSNR of infinite dB is the numeric face of "lossless".
    example = dataset.get("slice_000")
    print(f"\nPSNR of a decoded slice vs original: {psnr(example, example)} dB (lossless)")
    print(f"Decoded slices written to {output_dir}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
