#!/usr/bin/env python3
"""Architecture exploration: area, throughput and word-length trade-offs.

Reproduces the paper's design-space arguments and lets you move around the
operating point:

* Table III — why prior architectures are unaffordable at lossless
  (32-bit) precision and how the proposed single-MAC datapath compares,
* the Fig. 3 area composition of the proposed datapath (the 11.2 mm² figure),
* throughput/speedup across clock frequencies and image sizes,
* the word-length ablation behind the 32-bit choice.

Run with:  python examples/architecture_exploration.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.arch import PciBoardModel, paper_configuration, proposed_area_breakdown
from repro.baselines import area_ratios, table_iii_comparison
from repro.fxdwt import lossless_word_length_search
from repro.imaging import shepp_logan
from repro.perf import PentiumBaseline, WorkloadModel, clock_sweep, image_size_sweep, speedup_report


def show_table_iii() -> None:
    rows = table_iii_comparison()
    print(
        format_table(
            ("architecture", "multipliers", "memory words", "area mm2", "paper mm2"),
            [
                (r.name, r.multipliers, r.memory_words, round(r.total_area_mm2, 2), r.paper_area_mm2)
                for r in rows
            ],
            title="Table III at lossless precision (L=13, S=6, N=512, 32-bit words)",
        )
    )
    ratios = area_ratios(rows)
    print("\nArea relative to the proposed datapath:")
    for name, ratio in ratios.items():
        print(f"  {name:<22s} {ratio:5.1f}x")


def show_area_breakdown() -> None:
    print("\n" + str(proposed_area_breakdown(paper_configuration())))


def show_performance_sweeps() -> None:
    print("\nThroughput vs clock (512x512, 6 scales):")
    for clock, estimate in clock_sweep([20.0, 25.0, 33.0, 40.0]).items():
        print(f"  {clock:5.1f} MHz -> {estimate.images_per_second:5.2f} images/s")

    print("\nTransform time vs image size (at 33 MHz):")
    for size, estimate in image_size_sweep([128, 256, 512, 1024]).items():
        print(f"  {size:4d}x{size:<4d} -> {estimate.transform_seconds * 1e3:8.1f} ms")

    report = speedup_report()
    baseline = PentiumBaseline()
    workload = WorkloadModel()
    print(
        f"\nSpeedup vs the 133 MHz Pentium baseline: {report.speedup:.0f}x "
        f"({baseline.seconds_for_workload(workload):.0f} s -> "
        f"{report.accelerator_seconds * 1e3:.0f} ms per image)"
    )


def show_pci_board() -> None:
    # The paper's stated follow-on work: the accelerator on a PCI board.
    board = PciBoardModel(paper_configuration())
    report = board.report()
    print("\nPCI-board follow-on (section 5 future work):")
    print(f"  {report}")
    print(f"  end-to-end speedup vs Pentium-133 incl. bus transfers: "
          f"{board.effective_speedup_vs_pentium():.0f}x")


def show_word_length_ablation() -> None:
    print("\nWord-length ablation (F2, 4 scales, 64x64 CT phantom):")
    image = shepp_logan(64)
    for word_length, report in lossless_word_length_search(image, "F2", 4, range(18, 34, 2)).items():
        status = "lossless" if report.lossless else (
            "plan infeasible" if report.mismatched_pixels < 0 else f"max |err| {report.max_abs_error}"
        )
        print(f"  {word_length:2d}-bit word: {status}")


def main() -> None:
    show_table_iii()
    show_area_breakdown()
    show_performance_sweeps()
    show_pci_board()
    show_word_length_ablation()


if __name__ == "__main__":
    main()
