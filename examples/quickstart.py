#!/usr/bin/env python3
"""Quickstart: lossless fixed-point DWT of a 12-bit medical phantom.

This walks the shortest path through the library:

1. pick a Table I filter bank,
2. build the bit-exact fixed-point transform the paper's hardware implements,
3. transform a synthetic 12-bit CT phantom and reconstruct it,
4. confirm the reconstruction is bit-for-bit identical (the paper's §3 claim),
5. print the headline performance the proposed architecture would reach.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import FixedPointDWT, estimate_performance, get_bank, paper_configuration, verify_lossless
from repro.imaging import shepp_logan


def main() -> None:
    # 1. The 13/11-tap bank (F2) the paper dimensions its architecture for.
    bank = get_bank("F2")
    print(f"Filter bank {bank.name}: analysis lengths {bank.analysis_lengths}")

    # 2. The fixed-point engine: 32-bit words, Table II integer parts, 13-bit input.
    scales = 4
    engine = FixedPointDWT(bank, scales)
    print(f"Word-length plan (b_int per scale): {engine.plan.integer_bits()}")

    # 3. Transform a 12-bit CT-like phantom and reconstruct it.
    image = shepp_logan(256)
    pyramid = engine.forward(image)
    reconstructed = engine.inverse(pyramid)

    # 4. Bit-exactness — the property the whole word-length analysis buys.
    identical = bool(np.array_equal(reconstructed, image))
    print(f"Reconstruction bit-exact: {identical}")
    report = verify_lossless(image, bank, scales)
    print(f"Lossless report: {report}")

    # Subband statistics of the forward transform.
    print("Largest |coefficient| per scale (stored integers):")
    for scale, magnitude in sorted(pyramid.max_abs_stored_per_scale().items()):
        print(f"  scale {scale}: {magnitude}")

    # 5. What the proposed hardware would do with this workload.
    estimate = estimate_performance(paper_configuration())
    print(f"\nProposed architecture at the paper's operating point:\n  {estimate}")


if __name__ == "__main__":
    main()
