#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Runs all thirteen experiment drivers (Tables I-VI, Figs. 1-4, the Eq. (2)
worked example, the §5 headline figures and the §3 lossless claim), prints
each regenerated table next to its paper-vs-measured comparison, and exits
non-zero if any comparison falls outside its declared tolerance — the same
criterion the benchmark harness enforces.

Run with:  python examples/paper_tables.py [experiment_id ...]
"""

from __future__ import annotations

import sys

from repro.analysis import experiment_ids, run_experiment


def main(requested: list[str]) -> int:
    ids = requested or experiment_ids()
    failures = []
    for experiment_id in ids:
        result = run_experiment(experiment_id)
        print(result.render())
        print("\n" + "=" * 78 + "\n")
        if not result.all_within_tolerance:
            failures.append(experiment_id)
    if failures:
        print(f"FAILED to reproduce within tolerance: {', '.join(failures)}")
        return 1
    print(f"All {len(ids)} experiments reproduced within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
